"""End-to-end SwitchML jobs on a simulated rack.

:class:`SwitchMLJob` assembles the pieces -- rack topology, switch
program (Algorithm 3 by default, Algorithm 1 for the lossless/ablation
variant), dataplane adapter, and one worker agent per host -- then runs
all-reduce operations and reports tensor aggregation time (TAT), packet
traces, and protocol statistics.

This is the packet-level-fidelity path described in DESIGN.md SS3; the
analytic models in :mod:`repro.collectives.models` cover the wide sweeps
and are cross-validated against this simulator in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.fp16_program import Float16SwitchMLProgram
from repro.core.packet import SwitchMLPacket, fanout_frames
from repro.core.switch_program import (
    LosslessSwitchMLProgram,
    SwitchAction,
    SwitchMLProgram,
)
from repro.quant.float16 import float16_switch_from_fixed, float16_switch_to_fixed
from repro.core.worker import SwitchMLWorker, WorkerStats
from repro.net.host import HostSpec
from repro.net.link import LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Frame
from repro.net.switchchassis import PortDecision
from repro.net.topology import Rack, RackSpec, build_rack
from repro.obs.base import NULL_OBS, Observability
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["AllReduceResult", "SwitchMLConfig", "SwitchMLDataplane", "SwitchMLJob"]

#: shared drop decision, resolved once (process() runs per frame)
_PORT_DROP = PortDecision.drop()


@dataclass
class SwitchMLConfig:
    """Everything that defines a SwitchML deployment.

    Defaults are the paper's 10 Gbps setting: 8 workers, pool of 128
    slots, k = 32 elements per packet, 1 ms retransmission timeout.
    """

    num_workers: int = 8
    pool_size: int = 128
    elements_per_packet: int = 32
    timeout_s: float = 1e-3
    timeout_mode: str = "fixed"  # "adaptive" = Jacobson/Karn RTO (SS6)
    bytes_per_element: int = 4
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    pipeline_latency_s: float = 800e-9
    loss_factory: Callable[[], LossModel] = NoLoss
    lossless_switch: bool = False  # mount Algorithm 1 instead of Algorithm 3
    #: SwitchML(16): float16 on the wire, in-switch conversion (SS3.7).
    #: Use with elements_per_packet=64 and bytes_per_element=2.
    fp16_switch: bool = False
    check_invariants: bool = False
    #: bound consecutive per-slot retries; exceeded -> the worker reports
    #: failure (SS3.2: the framework handles worker/switch failures)
    max_retries: int | None = None
    #: control-plane pool epoch stamped into program and workers; the
    #: managed run mode (:mod:`repro.controlplane`) bumps it on recovery
    epoch: int = 0
    #: observability layer shared by the engine, workers, and switch
    #: program; None falls back to the disabled :data:`NULL_OBS`
    obs: "Observability | None" = None
    #: event-engine scheduler: "wheel" (timer-wheel/heap hybrid, default)
    #: or "heap" (single legacy heap); both fire the identical sequence
    scheduler: str = "wheel"
    #: reuse per-slot packet/frame objects on the hot paths instead of
    #: allocating per packet.  None (default) = auto: enabled exactly
    #: when ``link.jitter_s == 0`` -- jitter can reorder deliveries, and
    #: reuse relies on FIFO delivery to prove no frame is mutated while
    #: still in flight.  Force with True/False for A/B testing.
    reuse_buffers: bool | None = None
    #: execution granularity: "packet" replays the event-per-packet
    #: schedule (bit-identical to the tracked determinism fingerprints);
    #: "burst" drains each simultaneous-arrival group through one
    #: vectorized handler -- same final tensors, retransmission counts,
    #: and completion times, fewer engine events (DESIGN note in
    #: docs/ARCHITECTURE.md).
    granularity: str = "packet"
    #: epsilon-window coalescing (requires ``granularity="burst"``):
    #: arrivals within ``burst_epsilon`` seconds of a group's opener ride
    #: the same drain event, growing the batches the vectorized bodies
    #: see.  0 (default) coalesces only exact ties and stays
    #: bit-identical to packet mode; positive values (keep them well
    #: under the retransmission timeout) trade <= epsilon extra latency
    #: per hop for fewer, larger batches -- protocol-equivalent (same
    #: tensors, same retransmissions under the same loss draws), not
    #: schedule-identical.
    burst_epsilon: float = 0.0
    #: switch inner-loop backend: None reads $REPRO_BACKEND ("numpy"
    #: default; "c" = compiled kernel with NumPy fallback).  See
    #: :mod:`repro.core.backend`.
    backend: str | None = None
    #: frame-train egress (requires ``granularity="burst"``): workers and
    #: the switch emit each batch of outbound frames as one *train* --
    #: one engine event carrying the ordered frame vector, with per-frame
    #: RNG draws pre-sampled in stream order -- instead of one event per
    #: frame.  At ``burst_epsilon == 0`` the schedule stays bit-identical
    #: to packet mode (same draws, same stats, same fingerprints); see
    #: tests/integration/test_train_equivalence.py.
    train_egress: bool = False
    #: split trains longer than this many frames into consecutive
    #: sub-trains (bounds per-event work); 0 = unlimited
    train_cap: int = 0
    seed: int = 0


@dataclass
class AllReduceResult:
    """Outcome of one all-reduce across the rack."""

    completed: bool
    worker_stats: list[WorkerStats]
    results: list[np.ndarray | None]
    retransmissions: int
    frames_lost: int
    switch_multicasts: int
    switch_unicast_retransmits: int
    switch_ignored_duplicates: int
    trace: TraceRecorder
    sim_events: int
    failed_workers: list[int] = field(default_factory=list)
    switch_stale_epoch_drops: int = 0

    @property
    def tats(self) -> list[float]:
        """Per-worker tensor aggregation times (seconds)."""
        return [s.tensor_aggregation_time for s in self.worker_stats]

    @property
    def max_tat(self) -> float:
        return max(self.tats)

    @property
    def mean_tat(self) -> float:
        return float(np.mean(self.tats))

    @property
    def mean_rtt(self) -> float:
        rtts = [s.mean_rtt for s in self.worker_stats if s.rtt_count]
        return float(np.mean(rtts)) if rtts else float("nan")

    def aggregated_elements_per_second(self, num_elements: int) -> float:
        """ATE/s as the paper defines throughput in SS5.3."""
        return num_elements / self.max_tat


class SwitchMLDataplane:
    """Adapter mounting a SwitchML program into a switch chassis.

    Translates :class:`SwitchDecision` into port deliveries: MULTICAST
    fans a result frame out to every worker port via the traffic manager;
    UNICAST answers a single retransmitting worker.
    """

    def __init__(
        self,
        program: SwitchMLProgram | LosslessSwitchMLProgram,
        worker_ports: dict[int, int],
        worker_names: dict[int, str],
        bytes_per_element: int = 4,
        switch_name: str = "sw",
        reuse_buffers: bool = False,
    ):
        self.program = program
        self.worker_ports = dict(worker_ports)
        self.worker_names = dict(worker_names)
        self.bytes_per_element = bytes_per_element
        self.switch_name = switch_name
        self.corrupt_discarded = 0
        # (wid, port, dst) resolved once; the multicast loop is per packet
        self._fanout = [
            (wid, port, self.worker_names[wid])
            for wid, port in self.worker_ports.items()
        ]
        # split views for the batched replica build (fanout_frames): the
        # zip with _fanout_ports restores the (port, frame) pairing
        self._fanout_ports = [port for _, port, _ in self._fanout]
        self._fanout_dsts = [dst for _, _, dst in self._fanout]
        # Zero-copy multicast (reuse_buffers): per-slot result packet and
        # per-(slot, worker) frames + deliveries list, mutated per phase.
        # Safe on jitter-free links: the self-clocking protocol guarantees
        # a slot's next multicast cannot be emitted until every worker has
        # consumed (or lost) the previous one, so no pooled object is
        # still in flight when it is rewritten.  Unicast results are
        # always freshly allocated -- one can still be in flight alongside
        # the same slot's pooled multicast objects.
        self.reuse_buffers = reuse_buffers
        self._mc_packets: dict[int, SwitchMLPacket] = {}
        self._mc_deliveries: dict[int, list[tuple[int, Frame]]] = {}
        self._mc_decisions: dict[int, PortDecision] = {}
        # batch entry point of the mounted program, resolved once (the
        # fp16/lossless programs have none and take the scalar fallback)
        self._handle_batch = getattr(program, "handle_batch", None)

    def _multicast_pooled(self, packet: SwitchMLPacket) -> PortDecision:
        """Reuse the slot's pooled result packet/frames (see __init__)."""
        idx = packet.idx
        pooled = self._mc_packets.get(idx)
        if pooled is None:
            self._mc_packets[idx] = packet
            deliveries = list(
                zip(
                    self._fanout_ports,
                    fanout_frames(
                        packet, self.switch_name, self._fanout_dsts,
                        self.bytes_per_element,
                    ),
                )
            )
            self._mc_deliveries[idx] = deliveries
            decision = PortDecision(deliveries=deliveries)
            self._mc_decisions[idx] = decision
            return decision
        pooled.wid = packet.wid
        pooled.ver = packet.ver
        pooled.off = packet.off
        pooled.vector = packet.vector
        pooled.epoch = packet.epoch
        pooled.job_id = packet.job_id
        pooled.is_retransmission = packet.is_retransmission
        for _, frame in self._mc_deliveries[idx]:
            frame.corrupted = False  # may have been flipped on a past trip
        return self._mc_decisions[idx]

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        if frame.corrupted:
            # SS3.4 checksum: a corrupt update must not be aggregated.
            self.corrupt_discarded += 1
            return _PORT_DROP
        packet = frame.message
        if not isinstance(packet, SwitchMLPacket) or packet.from_switch:
            return _PORT_DROP
        decision = self.program.handle(packet)
        if decision.action is SwitchAction.DROP:
            return _PORT_DROP
        assert decision.packet is not None
        if decision.action is SwitchAction.UNICAST:
            wid = decision.unicast_wid
            assert wid is not None
            out = decision.packet.to_frame(
                src=self.switch_name,
                dst=self.worker_names[wid],
                bytes_per_element=self.bytes_per_element,
            )
            return PortDecision(deliveries=[(self.worker_ports[wid], out)])
        # MULTICAST: one replica per worker port.
        if self.reuse_buffers:
            return self._multicast_pooled(decision.packet)
        deliveries = list(
            zip(
                self._fanout_ports,
                fanout_frames(
                    decision.packet, self.switch_name, self._fanout_dsts,
                    self.bytes_per_element,
                ),
            )
        )
        return PortDecision(deliveries=deliveries)

    def process_batch(self, group: list[tuple[Frame, int]]) -> list[PortDecision]:
        """Burst-granularity counterpart of :meth:`process`.

        ``group`` is one simultaneous-arrival batch ``[(frame, in_port),
        ...]`` in arrival order.  Returns the non-drop decisions in the
        order the triggering frames arrived -- the order their
        individual pipeline completions would have emitted in packet
        mode -- so every downstream link serializes, and draws
        randomness, identically.  Absorbed frames (drops, corrupt or
        non-update traffic) produce no decision; the chassis accounts
        them from the length difference.
        """
        updates: list[SwitchMLPacket] = []
        for frame, _in_port in group:
            if frame.corrupted:
                self.corrupt_discarded += 1
                continue
            packet = frame.message
            if not isinstance(packet, SwitchMLPacket) or packet.from_switch:
                continue
            updates.append(packet)
        if not updates:
            return []
        handle_batch = self._handle_batch
        if handle_batch is not None:
            decisions = handle_batch(updates)
        else:
            # programs without a batch entry point (fp16, lossless) get
            # the per-packet path, packet by packet, in arrival order
            handle = self.program.handle
            decisions = [
                d for d in map(handle, updates)
                if d.action is not SwitchAction.DROP
            ]
        out: list[PortDecision] = []
        for decision in decisions:
            assert decision.packet is not None
            if decision.action is SwitchAction.UNICAST:
                wid = decision.unicast_wid
                assert wid is not None
                reply = decision.packet.to_frame(
                    src=self.switch_name,
                    dst=self.worker_names[wid],
                    bytes_per_element=self.bytes_per_element,
                )
                out.append(
                    PortDecision(deliveries=[(self.worker_ports[wid], reply)])
                )
            elif self.reuse_buffers:
                out.append(self._multicast_pooled(decision.packet))
            else:
                out.append(
                    PortDecision(
                        deliveries=list(
                            zip(
                                self._fanout_ports,
                                fanout_frames(
                                    decision.packet, self.switch_name,
                                    self._fanout_dsts, self.bytes_per_element,
                                ),
                            )
                        )
                    )
                )
        return out


class SwitchMLJob:
    """A SwitchML deployment: rack + program + workers, ready to reduce.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.job import SwitchMLJob, SwitchMLConfig
    >>> job = SwitchMLJob(SwitchMLConfig(num_workers=2, pool_size=4))
    >>> tensors = [np.full(64, w + 1, dtype=np.int64) for w in range(2)]
    >>> result = job.all_reduce(tensors)
    >>> bool((result.results[0] == 3).all())
    True
    """

    def __init__(self, config: SwitchMLConfig | None = None):
        self.config = config if config is not None else SwitchMLConfig()
        cfg = self.config
        if cfg.granularity not in ("packet", "burst"):
            raise ValueError(
                f"granularity must be 'packet' or 'burst', got {cfg.granularity!r}"
            )
        burst = cfg.granularity == "burst"
        if cfg.burst_epsilon < 0:
            raise ValueError("burst_epsilon must be non-negative")
        if cfg.burst_epsilon > 0 and not burst:
            raise ValueError("burst_epsilon requires granularity='burst'")
        if cfg.train_cap < 0:
            raise ValueError("train_cap must be non-negative")
        if cfg.train_egress and not burst:
            raise ValueError("train_egress requires granularity='burst'")
        self.sim = Simulator(seed=cfg.seed, scheduler=cfg.scheduler)
        # zero-copy hot paths need FIFO delivery; jitter reorders (see
        # SwitchMLConfig.reuse_buffers)
        reuse = (
            cfg.link.jitter_s == 0.0
            if cfg.reuse_buffers is None
            else cfg.reuse_buffers
        )
        self._reuse_buffers = reuse
        self.rack: Rack = build_rack(
            self.sim,
            RackSpec(
                num_hosts=cfg.num_workers,
                link=cfg.link,
                host=cfg.host,
                pipeline_latency_s=cfg.pipeline_latency_s,
                loss_factory=cfg.loss_factory,
            ),
        )
        if cfg.fp16_switch and cfg.lossless_switch:
            raise ValueError("fp16_switch and lossless_switch are exclusive")
        self.obs = cfg.obs if cfg.obs is not None else NULL_OBS
        self.sim.attach_obs(self.obs)
        # In-band telemetry: stamp the rack's links and pipeline, drain
        # at the hosts (off unless the obs layer carries a hub).
        if self.obs.telemetry is not None:
            self.obs.telemetry.instrument_rack(self.rack)
        # the Figure 6 per-bucket series; created before the program so
        # the switch end ticks the SAME recorder as worker 0
        self.trace = TraceRecorder(bucket_seconds=0.010)
        clock = lambda: self.sim.now  # noqa: E731 - bound to this job's sim
        if cfg.fp16_switch:
            self.program: (
                SwitchMLProgram | LosslessSwitchMLProgram | Float16SwitchMLProgram
            ) = Float16SwitchMLProgram(
                cfg.num_workers, cfg.pool_size, cfg.elements_per_packet,
                check_invariants=cfg.check_invariants,
                epoch=cfg.epoch,
                obs=self.obs, clock=clock, trace=self.trace,
            )
        elif cfg.lossless_switch:
            self.program = (
                LosslessSwitchMLProgram(
                    cfg.num_workers, cfg.pool_size, cfg.elements_per_packet
                )
            )
        else:
            self.program = SwitchMLProgram(
                cfg.num_workers,
                cfg.pool_size,
                cfg.elements_per_packet,
                check_invariants=cfg.check_invariants,
                epoch=cfg.epoch,
                obs=self.obs, clock=clock, trace=self.trace,
                backend=cfg.backend,
            )
        if burst:
            # rewire the rack for burst granularity: uplinks feed the
            # chassis's grouping ingress, downlinks terminate at the
            # host's grouping RX, and the links themselves coalesce
            # coinciding arrivals.  Rewiring (instead of branching in
            # the per-frame paths) keeps packet mode's hot paths
            # byte-for-byte identical to PR 3.
            switch = self.rack.switch
            eps = cfg.burst_epsilon
            switch.burst_epsilon = eps
            switch.train_egress = cfg.train_egress
            switch.train_cap = cfg.train_cap
            for w in range(cfg.num_workers):
                port = self.rack.host_port(w)
                self.rack.uplinks[w].connect(
                    switch.burst_ingress_callback(port),
                    switch.burst_ingress_many_callback(port),
                )
                self.rack.uplinks[w].burst = True
                self.rack.uplinks[w].burst_epsilon = eps
                self.rack.downlinks[w].connect(
                    self.rack.hosts[w].deliver_burst,
                    self.rack.hosts[w].deliver_burst_many,
                )
                self.rack.downlinks[w].burst = True
                self.rack.downlinks[w].burst_epsilon = eps
                self.rack.hosts[w].burst_epsilon = eps
        worker_ports = {w: self.rack.host_port(w) for w in range(cfg.num_workers)}
        worker_names = {w: self.rack.hosts[w].name for w in range(cfg.num_workers)}
        self.rack.switch.load_program(
            SwitchMLDataplane(
                self.program,
                worker_ports,
                worker_names,
                bytes_per_element=cfg.bytes_per_element,
                reuse_buffers=reuse,
            )
        )
        self._completed: set[int] = set()
        self._failed: set[int] = set()
        self.workers: list[SwitchMLWorker] = []
        for w in range(cfg.num_workers):
            worker = SwitchMLWorker(
                sim=self.sim,
                host=self.rack.hosts[w],
                wid=w,
                num_workers=cfg.num_workers,
                pool_size=cfg.pool_size,
                elements_per_packet=cfg.elements_per_packet,
                timeout_s=cfg.timeout_s,
                timeout_mode=cfg.timeout_mode,
                bytes_per_element=cfg.bytes_per_element,
                on_complete=self._on_worker_complete,
                trace=self.trace if w == 0 else None,  # representative worker
                tensor_dtype=np.float16 if cfg.fp16_switch else np.int64,
                max_retries=cfg.max_retries,
                on_failure=self._on_worker_failure,
                epoch=cfg.epoch,
                obs=self.obs,
                reuse_buffers=reuse,
                granularity=cfg.granularity,
                burst_epsilon=cfg.burst_epsilon,
                train_egress=cfg.train_egress,
                train_cap=cfg.train_cap,
            )
            self.rack.hosts[w].attach_agent(worker)
            self.workers.append(worker)

    def _on_worker_complete(self, wid: int, time: float) -> None:
        self._completed.add(wid)

    def _on_worker_failure(self, wid: int) -> None:
        self._failed.add(wid)

    @staticmethod
    def managed(control_config=None):
        """The controller-managed run mode: a deployment whose failures
        are detected and repaired by the control plane instead of merely
        reported.  Returns a :class:`repro.controlplane.Controller`;
        see that package for membership, recovery, and fault injection.
        """
        from repro.controlplane.controller import Controller

        return Controller(control_config)

    # ------------------------------------------------------------------
    def all_reduce(
        self,
        tensors: Sequence[np.ndarray] | None = None,
        num_elements: int | None = None,
        start_times: Sequence[float] | None = None,
        deadline_s: float = 120.0,
        verify: bool = True,
    ) -> AllReduceResult:
        """Aggregate one tensor across all workers.

        Parameters
        ----------
        tensors:
            One integer array per worker (equal lengths).  Lengths are
            padded to a multiple of ``k`` internally; results are
            returned unpadded.  Pass ``None`` with ``num_elements`` for a
            phantom (timing-only) run.
        start_times:
            Per-worker readiness times (seconds); models stragglers /
            skewed gradient availability.  Default: all at t=0.
        deadline_s:
            Simulated-time budget; a run not finishing by then reports
            ``completed=False`` (used by the ablation benches where the
            lossless program deadlocks under loss).
        verify:
            Check the delivered aggregates against the exact integer sum.
        """
        cfg = self.config
        k = cfg.elements_per_packet
        phantom = tensors is None
        if phantom:
            if num_elements is None:
                raise ValueError("phantom mode needs num_elements")
            padded_size = num_elements + ((-num_elements) % k)
            original_size = num_elements
            padded: list[np.ndarray | None] = [None] * cfg.num_workers
        else:
            if len(tensors) != cfg.num_workers:
                raise ValueError(
                    f"need {cfg.num_workers} tensors, got {len(tensors)}"
                )
            sizes = {len(t) for t in tensors}
            if len(sizes) != 1:
                raise ValueError("all workers must contribute equal-length tensors")
            original_size = sizes.pop()
            pad = (-original_size) % k
            padded_size = original_size + pad
            dtype = np.float16 if cfg.fp16_switch else np.int64
            padded = [
                np.concatenate([np.asarray(t, dtype=dtype), np.zeros(pad, dtype=dtype)])
                if pad
                else np.asarray(t, dtype=dtype)
                for t in tensors
            ]

        self._completed.clear()
        self._failed.clear()
        # worker tensor offsets restart at zero each reduction; the
        # switch's phase-offset discipline must re-anchor with them
        begin = getattr(self.program, "begin_reduction", None)
        if begin is not None:
            begin()
        base = self.sim.now
        for w, worker in enumerate(self.workers):
            offset = 0.0 if start_times is None else float(start_times[w])
            if phantom:
                self.sim.schedule_at(
                    base + offset, worker.start, None, padded_size
                )
            else:
                self.sim.schedule_at(base + offset, worker.start, padded[w])

        deadline = base + deadline_s
        self.sim.run_deadline(deadline)
        completed = len(self._completed) == cfg.num_workers

        results: list[np.ndarray | None] = []
        for worker in self.workers:
            if phantom or worker.result is None:
                results.append(None)
            else:
                results.append(worker.result[:original_size].copy())

        if verify and completed and not phantom:
            if cfg.fp16_switch:
                # the in-switch conversion path is deterministic: table
                # lookup, integer sum, table lookup back.
                fixed = sum(float16_switch_to_fixed(p) for p in padded)
                expected = float16_switch_from_fixed(fixed)[:original_size]
            else:
                expected = np.sum([p for p in padded], axis=0, dtype=np.int64)[
                    :original_size
                ]
            for w, res in enumerate(results):
                if res is None or not np.array_equal(res, expected):
                    raise AssertionError(
                        f"worker {w} aggregate differs from the exact sum"
                    )

        return AllReduceResult(
            completed=completed,
            worker_stats=[w.stats for w in self.workers],
            results=results,
            retransmissions=sum(w.stats.retransmissions for w in self.workers),
            frames_lost=self.rack.total_frames_lost(),
            switch_multicasts=self.program.multicasts,
            switch_unicast_retransmits=getattr(
                self.program, "unicast_retransmits", 0
            ),
            switch_ignored_duplicates=getattr(
                self.program, "ignored_duplicates", 0
            ),
            trace=self.trace,
            sim_events=self.sim.events_processed,
            failed_workers=sorted(self._failed),
            switch_stale_epoch_drops=getattr(
                self.program, "stale_epoch_drops", 0
            ),
        )
