"""Pool sizing from the bandwidth-delay product (SS3.6).

The pool size ``s`` bounds the in-flight packets per worker.  Too small
starves the link (responses cannot arrive at line rate); too large only
adds queueing at the workers and switch SRAM cost.  The paper's rule:

    s = next power of two of ceil(BDP / b)

where BDP is the *end-to-end* bandwidth-delay product (including host
processing time, measured in deployment) and ``b`` the frame size
(180 bytes).  The power-of-two rounding exists because DPDK batches
send/receive in powers of two.  With the paper's measured delays this
yields s = 128 at 10 Gbps and s = 512 at 100 Gbps (32 KB and 128 KB of
switch register space).
"""

from __future__ import annotations

from repro.net.packet import SWITCHML_FRAME_BYTES

__all__ = [
    "MEASURED_DELAY_S",
    "next_power_of_two",
    "optimal_pool_size",
    "pool_size_for_rate",
]

#: End-to-end delay (propagation + switch pipeline + host RX/TX processing
#: + DPDK batching) measured on the simulated testbed, per link rate.
#: These play the role of the paper's in-deployment delay measurements;
#: with them the BDP rule reproduces the paper's s = 128 / s = 512.
MEASURED_DELAY_S: dict[float, float] = {
    10.0: 12.0e-6,
    100.0: 5.5e-6,
}


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= x (x >= 1)."""
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    return 1 << (x - 1).bit_length()


def optimal_pool_size(
    rate_gbps: float,
    end_to_end_delay_s: float,
    frame_bytes: int = SWITCHML_FRAME_BYTES,
) -> int:
    """``next_pow2(ceil(BDP / b))`` -- the SS3.6 rule."""
    if rate_gbps <= 0 or end_to_end_delay_s <= 0:
        raise ValueError("rate and delay must be positive")
    bdp_bytes = rate_gbps * 1e9 * end_to_end_delay_s / 8.0
    slots = max(1, -(-int(bdp_bytes) // frame_bytes))
    return next_power_of_two(slots)


def pool_size_for_rate(rate_gbps: float) -> int:
    """Pool size at a standard link rate, using the measured delays.

    Reproduces the paper's deployment choices: 128 at 10 Gbps, 512 at
    100 Gbps.  Unknown rates interpolate the delay between the nearest
    calibrated points (delay shrinks with faster NICs/hosts).
    """
    if rate_gbps in MEASURED_DELAY_S:
        delay = MEASURED_DELAY_S[rate_gbps]
    else:
        rates = sorted(MEASURED_DELAY_S)
        if rate_gbps <= rates[0]:
            delay = MEASURED_DELAY_S[rates[0]]
        elif rate_gbps >= rates[-1]:
            delay = MEASURED_DELAY_S[rates[-1]]
        else:
            lo = max(r for r in rates if r <= rate_gbps)
            hi = min(r for r in rates if r >= rate_gbps)
            frac = (rate_gbps - lo) / (hi - lo)
            delay = MEASURED_DELAY_S[lo] + frac * (MEASURED_DELAY_S[hi] - MEASURED_DELAY_S[lo])
    return optimal_pool_size(rate_gbps, delay)
