"""The virtual stream buffer manager (Appendix B).

ML frameworks emit one gradient tensor per layer and reduce each
independently (e.g. 152 tensors per ResNet50 iteration in Caffe2).
Resetting switch state per tensor would waste slots and synchronization;
instead the paper's implementation "treats the set of tensors virtually
as a single, continuous stream of data across iterations".

:class:`StreamBufferManager` does exactly that: callers enqueue tensors
(in the same order on every worker -- the ordering requirement the paper
imposes on frameworks), the manager lays them out back to back in a
stream padded to the packet chunk size, and after aggregation it steers
each result slice back to its requester.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StreamBufferManager", "TensorSlice"]


@dataclass(frozen=True)
class TensorSlice:
    """Where one tensor lives inside the aggregation stream."""

    name: str
    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class StreamBufferManager:
    """Packs tensors into one k-aligned stream and unpacks results.

    Parameters
    ----------
    elements_per_packet:
        The chunk size ``k``; the stream is padded so every tensor
        boundary question reduces to plain slicing and the total length
        is a multiple of ``k``.
    pad_each_tensor:
        If True, each tensor is padded to a ``k`` boundary individually
        (simpler result steering, slightly more padding); if False only
        the stream tail is padded.  SwitchML's correctness does not
        depend on the choice; the default matches the per-tensor
        independence of framework reductions.
    """

    def __init__(self, elements_per_packet: int, pad_each_tensor: bool = True):
        if elements_per_packet <= 0:
            raise ValueError("elements_per_packet must be positive")
        self.k = elements_per_packet
        self.pad_each_tensor = pad_each_tensor
        self._slices: list[TensorSlice] = []
        self._parts: list[np.ndarray] = []
        self._cursor = 0

    # ------------------------------------------------------------------
    def add_tensor(self, name: str, values: np.ndarray) -> TensorSlice:
        """Append ``values`` to the stream; returns its slice handle."""
        flat = np.asarray(values).reshape(-1)
        if flat.size == 0:
            raise ValueError(f"tensor {name!r} is empty")
        slice_ = TensorSlice(name=name, offset=self._cursor, length=flat.size)
        self._slices.append(slice_)
        self._parts.append(flat.astype(np.int64, copy=False))
        self._cursor += flat.size
        if self.pad_each_tensor:
            pad = (-self._cursor) % self.k
            if pad:
                self._parts.append(np.zeros(pad, dtype=np.int64))
                self._cursor += pad
        return slice_

    @property
    def slices(self) -> list[TensorSlice]:
        return list(self._slices)

    @property
    def stream_length(self) -> int:
        """Total stream length including tail padding (multiple of k)."""
        return self._cursor + ((-self._cursor) % self.k)

    def build_stream(self) -> np.ndarray:
        """The padded int64 stream to hand to the worker protocol."""
        if not self._parts:
            raise ValueError("no tensors added")
        tail_pad = (-self._cursor) % self.k
        parts = list(self._parts)
        if tail_pad:
            parts.append(np.zeros(tail_pad, dtype=np.int64))
        return np.concatenate(parts)

    def extract(self, aggregated_stream: np.ndarray, slice_: TensorSlice) -> np.ndarray:
        """Steer one aggregated tensor back out of the result stream."""
        if slice_.end > len(aggregated_stream):
            raise ValueError(
                f"slice {slice_.name!r} [{slice_.offset}:{slice_.end}] exceeds "
                f"stream length {len(aggregated_stream)}"
            )
        return aggregated_stream[slice_.offset : slice_.end]

    def extract_all(self, aggregated_stream: np.ndarray) -> dict[str, np.ndarray]:
        """All tensors of the stream, by name."""
        return {s.name: self.extract(aggregated_stream, s) for s in self._slices}
