"""The float16 switch program: SwitchML(16) with in-switch conversion.

SS3.7 describes two numerical designs; the second half of the pair is
implemented here: "the switch actually converts each 16-bit
floating-point value in the incoming model updates into a 32-bit
fixed-point and then performs aggregation.  When generating responses,
the switch converts fixed-point values back into equivalent
floating-point values."  Appendix C confirms the conversion is feasible
"using lookup tables" on Tofino -- which is exactly how
:mod:`repro.quant.float16` implements it (a 65,536-entry table).

Workers therefore put *half-precision floats* on the wire (64 of them in
the same 180-byte frame), the registers still hold 32-bit integers, and
the loss-recovery machinery of Algorithm 3 is inherited unchanged: this
class only wraps the value path of :class:`SwitchMLProgram`.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import SwitchMLPacket
from repro.core.switch_program import SwitchAction, SwitchDecision, SwitchMLProgram
from repro.quant.float16 import (
    SWITCH_FIXED_SCALE,
    float16_switch_from_fixed,
    float16_switch_to_fixed,
)

__all__ = ["Float16SwitchMLProgram"]


class Float16SwitchMLProgram:
    """Algorithm 3 with float16 wire values and in-switch conversion.

    The packet ``vector`` is interpreted as float16 payload (numpy
    float16 array).  Ingress converts it through the lookup table to
    fixed point before the register add; a completed slot's aggregate is
    converted back to float16 for the response.  Everything else --
    ``seen`` bitmap, shadow copies, counters -- is the inner program's.
    """

    def __init__(
        self,
        num_workers: int,
        pool_size: int,
        elements_per_packet: int = 64,
        check_invariants: bool = False,
        epoch: int = 0,
        obs=None,
        clock=None,
        trace=None,
    ):
        self.inner = SwitchMLProgram(
            num_workers, pool_size, elements_per_packet,
            check_invariants=check_invariants, epoch=epoch,
            obs=obs, clock=clock, trace=trace,
        )
        self.n = num_workers
        self.s = pool_size
        self.k = elements_per_packet
        self.conversions_in = 0
        self.conversions_out = 0

    # expose the counters benches read from SwitchMLProgram
    @property
    def multicasts(self) -> int:
        return self.inner.multicasts

    @property
    def unicast_retransmits(self) -> int:
        return self.inner.unicast_retransmits

    @property
    def ignored_duplicates(self) -> int:
        return self.inner.ignored_duplicates

    @property
    def sram_bytes(self) -> int:
        return self.inner.sram_bytes

    @property
    def epoch(self) -> int:
        return self.inner.epoch

    @property
    def stale_epoch_drops(self) -> int:
        return self.inner.stale_epoch_drops

    def begin_reduction(self) -> None:
        self.inner.begin_reduction()

    def handle(self, p: SwitchMLPacket) -> SwitchDecision:
        if p.vector is not None:
            fixed = float16_switch_to_fixed(
                np.asarray(p.vector, dtype=np.float16)
            )
            self.conversions_in += 1
            p = SwitchMLPacket(
                wid=p.wid, ver=p.ver, idx=p.idx, off=p.off,
                num_elements=p.num_elements, vector=fixed,
                is_retransmission=p.is_retransmission, job_id=p.job_id,
                epoch=p.epoch,
            )
        decision = self.inner.handle(p)
        if (
            decision.action in (SwitchAction.MULTICAST, SwitchAction.UNICAST)
            and decision.packet is not None
            and decision.packet.vector is not None
        ):
            self.conversions_out += 1
            half = float16_switch_from_fixed(decision.packet.vector)
            decision.packet.vector = half
        return decision

    @staticmethod
    def worker_error_bound(num_workers: int) -> float:
        """Per-element error of the in-switch fixed-point sum, in wire
        (scaled) units: each of n inputs rounds to the 1/1024 grid."""
        return num_workers * 0.5 / SWITCH_FIXED_SCALE
