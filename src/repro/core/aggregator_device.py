"""The SS6 "parameter aggregator" deployment model.

The paper's alternative to in-switch deployment: "one could use a
similar design to create a dedicated 'parameter aggregator', i.e., a
server unit that combines a programmable switching chip with a typical
server board ... racks could be equipped with such a parameter
aggregator, attached for example to the legacy ToR using several
100 Gbps or 400 Gbps ports".

Here the aggregator is a host on the simulated rack running the exact
Algorithm 3 program; the rack's switch is a *legacy* forwarding switch.
The deployment-defining difference from in-switch SwitchML: completed
aggregates leave as ``n`` unicast frames through the aggregator's own
attachment, so the attachment must provide ~``n x`` the worker link rate
for the rack to run at line rate -- which is why the paper says
"several 100 Gbps or 400 Gbps ports".  The bench measures both sides of
that sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.packet import SwitchMLPacket
from repro.core.switch_program import SwitchAction, SwitchMLProgram
from repro.core.worker import SwitchMLWorker, WorkerStats
from repro.net.host import Host, HostSpec
from repro.net.link import LinkSpec
from repro.net.packet import Frame
from repro.net.switchchassis import ForwardingProgram
from repro.net.topology import Rack, RackSpec, build_rack
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource

__all__ = ["AggregatorDeviceConfig", "AggregatorDeviceJob", "AggregatorAgent"]


class AggregatorAgent:
    """The SwitchML program running on a server's network attachment."""

    def __init__(
        self,
        host: Host,
        program: SwitchMLProgram,
        worker_names: list[str],
        bytes_per_element: int = 4,
    ):
        self.host = host
        self.program = program
        self.worker_names = worker_names
        self.bytes_per_element = bytes_per_element
        self.updates_processed = 0

    def on_frame(self, frame: Frame) -> None:
        if frame.corrupted:
            return
        packet = frame.message
        if not isinstance(packet, SwitchMLPacket) or packet.from_switch:
            return
        self.updates_processed += 1
        decision = self.program.handle(packet)
        if decision.action is SwitchAction.DROP:
            return
        assert decision.packet is not None
        wire = packet.num_elements * self.bytes_per_element + 52
        if decision.action is SwitchAction.UNICAST:
            targets = [decision.unicast_wid]
        else:
            targets = list(range(len(self.worker_names)))
        for wid in targets:
            self.host.send(
                Frame(
                    wire_bytes=wire,
                    message=decision.packet,
                    src=self.host.name,
                    dst=self.worker_names[wid],
                    flow_key=packet.idx,
                )
            )


@dataclass
class AggregatorDeviceConfig:
    """Workers at ``link`` rate; the aggregator at ``aggregator_link``.

    The paper's sizing: the aggregator attachment should carry the
    aggregate result fan-out, i.e. ~``num_workers x`` the worker rate.
    """

    num_workers: int = 8
    pool_size: int = 128
    elements_per_packet: int = 32
    timeout_s: float = 1e-3
    link: LinkSpec = field(default_factory=LinkSpec)
    aggregator_link: LinkSpec = field(
        default_factory=lambda: LinkSpec(rate_gbps=100.0)
    )
    aggregator_host: HostSpec = field(
        default_factory=lambda: HostSpec(num_cores=16)
    )
    host: HostSpec = field(default_factory=HostSpec)
    seed: int = 0


@dataclass
class AggregatorDeviceResult:
    completed: bool
    worker_stats: list[WorkerStats]
    results: list[np.ndarray | None]

    @property
    def max_tat(self) -> float:
        return max(s.tensor_aggregation_time for s in self.worker_stats)

    def aggregated_elements_per_second(self, num_elements: int) -> float:
        return num_elements / self.max_tat


class AggregatorDeviceJob:
    """n workers + 1 aggregator box behind a legacy forwarding ToR."""

    def __init__(self, config: AggregatorDeviceConfig | None = None):
        self.config = config if config is not None else AggregatorDeviceConfig()
        cfg = self.config
        n = cfg.num_workers
        self.sim = Simulator(seed=cfg.seed)
        self.rack: Rack = build_rack(
            self.sim, RackSpec(num_hosts=n + 1, link=cfg.link, host=cfg.host)
        )
        self.rack.switch.load_program(ForwardingProgram(self.rack.port_map()))

        # host n is the aggregator: fat attachment, beefier CPU
        device = self.rack.hosts[n]
        device.spec = cfg.aggregator_host
        device.cores = [
            SerialResource(self.sim, name=f"{device.name}/core{i}")
            for i in range(cfg.aggregator_host.num_cores)
        ]
        self.rack.uplinks[n].spec = cfg.aggregator_link
        self.rack.downlinks[n].spec = cfg.aggregator_link

        worker_names = [h.name for h in self.rack.hosts[:n]]
        self.program = SwitchMLProgram(n, cfg.pool_size, cfg.elements_per_packet)
        self.aggregator = AggregatorAgent(device, self.program, worker_names)
        device.attach_agent(self.aggregator)

        self._completed: set[int] = set()
        self.workers: list[SwitchMLWorker] = []
        for w in range(n):
            worker = SwitchMLWorker(
                sim=self.sim,
                host=self.rack.hosts[w],
                wid=w,
                num_workers=n,
                pool_size=cfg.pool_size,
                elements_per_packet=cfg.elements_per_packet,
                timeout_s=cfg.timeout_s,
                on_complete=lambda wid, t: self._completed.add(wid),
                switch_addr=device.name,
            )
            self.rack.hosts[w].attach_agent(worker)
            self.workers.append(worker)

    def all_reduce(
        self,
        tensors: Sequence[np.ndarray] | None = None,
        num_elements: int | None = None,
        deadline_s: float = 60.0,
        verify: bool = True,
    ) -> AggregatorDeviceResult:
        cfg = self.config
        k = cfg.elements_per_packet
        self._completed.clear()
        if tensors is None:
            if num_elements is None:
                raise ValueError("phantom mode needs num_elements")
            padded_size = num_elements + ((-num_elements) % k)
            for worker in self.workers:
                worker.start(None, num_elements=padded_size)
            original = num_elements
            padded = None
        else:
            if len(tensors) != cfg.num_workers:
                raise ValueError(f"need {cfg.num_workers} tensors")
            original = len(tensors[0])
            pad = (-original) % k
            padded = [
                np.concatenate([np.asarray(t, dtype=np.int64),
                                np.zeros(pad, dtype=np.int64)])
                for t in tensors
            ]
            for worker, tensor in zip(self.workers, padded):
                worker.start(tensor)
        deadline = self.sim.now + deadline_s
        while self.sim.step():
            if self.sim.now > deadline:
                break
        completed = len(self._completed) == cfg.num_workers
        results = [
            None if w.result is None else w.result[:original].copy()
            for w in self.workers
        ]
        if verify and completed and padded is not None:
            expected = np.sum(padded, axis=0, dtype=np.int64)[:original]
            for w, res in enumerate(results):
                if res is None or not np.array_equal(res, expected):
                    raise AssertionError(f"aggregator worker {w} mismatch")
        return AggregatorDeviceResult(
            completed=completed,
            worker_stats=[w.stats for w in self.workers],
            results=results,
        )
