"""Worker-side protocol: Algorithms 2 and 4.

Each worker streams its (already quantized) model update through the
switch's slot pool:

* it launches one packet per pool slot (the initial window of ``s``
  packets, Algorithm 2 lines 1-5);
* every result packet received both delivers an aggregated chunk and acts
  as a flow-control credit to send the next chunk for that slot,
  advancing the offset by ``k * s`` and flipping the pool-version bit
  (Algorithm 4 lines 9-19) -- the self-clocking that keeps all workers
  within one phase of each other;
* a per-slot retransmission timer resends the *same* packet on expiry
  (Algorithm 4 lines 20-23); the switch's ``seen`` bitmap makes the
  resend idempotent and its shadow copy serves results the worker missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.packet import Heartbeat, SwitchMLPacket, to_frames
from repro.core.protocol import WorkerSlotState
from repro.net.host import Host
from repro.net.packet import Frame
from repro.obs.base import NULL_OBS
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceRecorder

_INF = float("inf")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.base import Observability

__all__ = ["SwitchMLWorker", "WorkerStats"]


@dataclass
class WorkerStats:
    """Per-worker protocol counters for one tensor aggregation."""

    packets_sent: int = 0
    retransmissions: int = 0
    results_received: int = 0
    stale_results_ignored: int = 0
    corrupt_discarded: int = 0
    timeouts: int = 0
    rtt_sum: float = 0.0
    rtt_count: int = 0
    start_time: float = 0.0
    finish_time: float = field(default=float("nan"))

    @property
    def mean_rtt(self) -> float:
        return self.rtt_sum / self.rtt_count if self.rtt_count else float("nan")

    @property
    def tensor_aggregation_time(self) -> float:
        """TAT as the paper defines it: ready-to-send until fully received."""
        return self.finish_time - self.start_time


class SwitchMLWorker:
    """One worker machine's SwitchML endpoint (a :class:`HostAgent`).

    Parameters
    ----------
    sim, host:
        Simulation engine and the host this agent runs on.
    wid:
        Worker id in ``[0, num_workers)``.
    num_workers, pool_size, elements_per_packet:
        Protocol parameters shared with the switch program.
    timeout_s:
        Retransmission timeout; the paper's experiments use 1 ms.  With
        ``timeout_mode="adaptive"`` this is only the initial value: the
        worker runs a Jacobson/Karn estimator (SRTT + 4 x RTTVAR) over
        observed response times, implementing SS6's advice to "adapt the
        retransmission timeout according to variations in end-to-end
        RTT".
    bytes_per_element:
        4 for int32/float32 exchange, 2 for the float16 variant (the wire
        carries half-width values; SS3.7).
    on_complete:
        Called as ``on_complete(wid, finish_time)`` when the aggregated
        tensor is fully assembled.
    trace:
        Optional :class:`TraceRecorder`; receives ``sent`` / ``resent``
        ticks (Figure 6's series).
    obs:
        Optional :class:`repro.obs.base.Observability` layer.  When
        enabled, the worker emits ``packet.tx`` / ``packet.retx`` /
        ``packet.rx`` events on its own trace lane and feeds the
        ``worker_*`` counters plus the RTT / retransmission-gap / TAT
        histograms.
    """

    #: smallest RX group the vectorized batch body pays for itself on;
    #: smaller groups replay the per-result loop (same semantics)
    _RX_BATCH_MIN = 8

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        wid: int,
        num_workers: int,
        pool_size: int,
        elements_per_packet: int,
        timeout_s: float = 1e-3,
        bytes_per_element: int = 4,
        on_complete: Callable[[int, float], None] | None = None,
        trace: TraceRecorder | None = None,
        switch_addr: str = "sw",
        timeout_mode: str = "fixed",
        min_timeout_s: float = 20e-6,
        max_timeout_s: float = 100e-3,
        tensor_dtype=np.int64,
        max_retries: int | None = None,
        on_failure: Callable[[int], None] | None = None,
        epoch: int = 0,
        member_id: int | None = None,
        obs: "Observability | None" = None,
        reuse_buffers: bool = False,
        job_id: int = 0,
        granularity: str = "packet",
        burst_epsilon: float = 0.0,
        train_egress: bool = False,
        train_cap: int = 0,
    ):
        if timeout_mode not in ("fixed", "adaptive"):
            raise ValueError(f"unknown timeout mode {timeout_mode!r}")
        if granularity not in ("packet", "burst"):
            raise ValueError(f"unknown granularity {granularity!r}")
        if burst_epsilon < 0:
            raise ValueError("burst_epsilon must be non-negative")
        if train_cap < 0:
            raise ValueError("train_cap must be non-negative")
        self.sim = sim
        self._schedule_at = sim.schedule_at
        self.host = host
        self.wid = wid
        self.n = num_workers
        self.s = pool_size
        self.k = elements_per_packet
        self.timeout_s = timeout_s
        self.bytes_per_element = bytes_per_element
        self.on_complete = on_complete
        self.trace = trace
        self.switch_addr = switch_addr
        self.timeout_mode = timeout_mode
        self.min_timeout_s = min_timeout_s
        self.max_timeout_s = max_timeout_s
        self.tensor_dtype = tensor_dtype
        # SS3.2 footnote 4: worker/link/switch failures are handled by
        # the ML framework; this is the detector that hands the framework
        # its signal.  None = retry forever (the paper's in-protocol
        # behaviour); an integer bounds consecutive retries per slot.
        self.max_retries = max_retries
        self.on_failure = on_failure
        # Fail-stop semantics (see crash() / _fail()): ``failed`` is the
        # observable "this worker is not going to finish" flag, set by
        # BOTH paths; ``crashed`` additionally marks a fail-stop death
        # (the worker stopped acting and cannot report).
        self.failed = False
        self.crashed = False
        #: control-plane pool epoch stamped into every outgoing packet;
        #: the controller advances it via :meth:`reconfigure`
        self.epoch = epoch
        #: multi-tenant job id stamped into every outgoing packet (0 for
        #: single-job racks; see :mod:`repro.core.tenancy`)
        self.job_id = job_id
        #: stable identity used by the control plane's membership layer
        #: (survives protocol ``wid`` renumbering on re-admission)
        self.member_id = wid if member_id is None else member_id
        self._hb_interval: float | None = None
        self._hb_timer: Event | None = None
        # Jacobson estimator state (adaptive mode)
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rtt_peak = 0.0  # decaying peak: guards RTT ramp-ups
        #: execution granularity: "packet" replays the event-per-packet
        #: schedule; "burst" additionally books the per-slot deadlines
        #: into the SoA core's deadline array (see _arm_deadline).  With
        #: eps=0, timer *events* stay per-slot: coarsening them into one
        #: wake-up changes how same-instant expiries interleave with
        #: other workers' events (the engine breaks time ties by
        #: scheduling order), which cascades through uplink send order
        #: into switch arrival order under loss -- and eps=0 burst mode
        #: promises bit-identical protocol outcomes.  With eps>0 the
        #: schedule is already epsilon-perturbed, so the worker runs ONE
        #: singleton engine timer at the earliest armed deadline;
        #: expiries drain through WorkerSlotState.due() in (deadline,
        #: arm_seq) order -- s timer events collapse to one.
        self.granularity = granularity
        self._burst = granularity == "burst"
        #: frame-train egress: a window of same-destination chunk sends
        #: leaves through one :meth:`Host.send_train` call (one engine
        #: event) instead of one ``host.send`` per chunk.  Per-chunk
        #: bookkeeping, stats, and timer arming are identical; in packet
        #: mode the result is bit-for-bit the per-frame schedule (the
        #: train replays every frame at its own submit time).
        self._train = bool(train_egress)
        #: longest train put on the wire in one piece; 0 = unlimited.
        #: Splitting trades batching for pacing (each sub-train charges
        #: the TX cores when *it* is built, same as this implementation's
        #: single-callback semantics -- the cap only bounds list sizes).
        self.train_cap = int(train_cap)
        self.burst_epsilon = float(burst_epsilon)
        self._single_timer = self._burst and self.burst_epsilon > 0.0
        self._deadline_event: Event | None = None
        self._deadline_armed_at = _INF
        # per-packet trace events fire in packet mode; burst mode emits
        # per-burst aggregate records instead (on_frames/_fire_deadline)
        self._trace_packets = not self._burst
        #: the data-oriented core: pool-wide per-slot state as NumPy
        #: arrays (this class is the per-event adapter over it).  The
        #: ``_slot_*`` attributes below alias its arrays.
        self._st = WorkerSlotState(pool_size)
        # per-slot exponential backoff on consecutive timeouts (resets on
        # a received result) -- keeps a sudden RTT increase (congestion)
        # from degenerating into a retransmission storm.  Persists across
        # aggregations (like _next_ver).
        self._slot_backoff = self._st.backoff
        self._arm_counter = 0
        # Zero-copy hot path: when enabled, each slot's update packet and
        # TX frame are allocated once per aggregation and mutated in
        # place on every phase advance.  Safe only on jitter-free links
        # (FIFO end to end): by the time a slot's result arrives, the
        # previous update frame has necessarily been consumed by the
        # switch or dropped, so nothing still references it.  Resends are
        # always freshly allocated -- a resend can be in flight
        # concurrently with its original.  The job enables this when
        # ``link.jitter_s == 0``.
        self.reuse_buffers = reuse_buffers
        self._slot_buf: list[SwitchMLPacket | None] = []
        self._slot_frame: list[Frame | None] = []

        # observability: children resolved once here so the send/receive
        # paths tick a bound instrument (a no-op when obs is disabled)
        self.obs = obs if obs is not None else NULL_OBS
        self._tracer = self.obs.tracer
        self._actor = f"worker{wid}"
        metrics = self.obs.metrics
        self._m_sent = metrics.counter(
            "worker_packets_sent_total", "update packets put on the wire",
            label_names=("wid",),
        ).labels(str(wid))
        self._m_retx = metrics.counter(
            "worker_retransmissions_total", "timeout-driven resends",
            label_names=("wid",),
        ).labels(str(wid))
        self._m_results = metrics.counter(
            "worker_results_total", "aggregated results consumed",
            label_names=("wid",),
        ).labels(str(wid))
        self._m_stale = metrics.counter(
            "worker_stale_results_total",
            "results ignored as stale (wrong phase or epoch)",
            label_names=("wid",),
        ).labels(str(wid))
        self._h_rtt = metrics.histogram(
            "worker_rtt_seconds", "per-chunk send-to-result round trip"
        )
        self._h_retx_gap = metrics.histogram(
            "worker_retx_gap_seconds",
            "time from a chunk's first send to each timeout-driven resend",
        )
        self._h_tat = metrics.histogram(
            "worker_tat_seconds", "tensor aggregation time (start to finish)"
        )
        # cached so the per-packet paths skip even the no-op instrument
        # calls when metrics are disabled
        self._m_on = metrics.enabled

        self.stats = WorkerStats()
        self._tensor: np.ndarray | None = None
        self._result: np.ndarray | None = None
        self._size = 0
        self._phantom = False
        self._remaining = 0
        self._active = False
        self._base_off = 0
        self._active_slots = 0
        # per-slot protocol state: aliases of the SoA core's arrays (the
        # object-reference columns -- packet, timer, reuse buffers --
        # stay Python lists; everything numeric is an array)
        self._slot_off = self._st.off
        self._slot_ver = self._st.ver
        self._slot_sent_at = self._st.sent_at
        self._slot_retransmitted = self._st.retransmitted
        self._slot_retries = self._st.retries
        # burst mode mirrors "chunk in flight" into the SoA bool column
        # so the batch RX body can mask whole-batch instead of touching
        # the _slot_packet object column per frame
        self._slot_outstanding = self._st.outstanding
        self._slot_packet: list[SwitchMLPacket | None] = []
        self._slot_timer: list[Event | None] = []
        # Pool versions persist ACROSS tensors: the implementation treats
        # consecutive tensors "as a single, continuous stream of data
        # across iterations" (Appendix B), so each slot's version keeps
        # alternating from one aggregation to the next.  Resetting to 0
        # would collide with the switch's still-set ``seen`` bits from a
        # previous tensor whose last phase used version 0.
        self._next_ver = self._st.next_ver

    # ------------------------------------------------------------------
    # Starting an aggregation
    # ------------------------------------------------------------------
    def start(self, tensor: np.ndarray | None, num_elements: int | None = None) -> None:
        """Begin aggregating ``tensor`` (int32/int64 values, length a
        multiple of ``k``).

        Phantom mode: pass ``tensor=None`` with ``num_elements`` set; the
        protocol runs with empty payloads for timing-only sweeps.
        """
        if self._active:
            raise RuntimeError(f"worker {self.wid} already aggregating")
        if tensor is None:
            if num_elements is None:
                raise ValueError("phantom mode needs num_elements")
            self._size = int(num_elements)
            self._phantom = True
            self._result = None
        else:
            self._size = len(tensor)
            self._phantom = False
            self._tensor = np.asarray(tensor, dtype=self.tensor_dtype)
            self._result = np.zeros(self._size, dtype=self.tensor_dtype)
        if self._size <= 0:
            raise ValueError("tensor must have at least one element")
        if self._size % self.k != 0:
            raise ValueError(
                f"tensor length {self._size} must be a multiple of k={self.k} "
                "(the stream buffer manager pads)"
            )

        total_packets = self._size // self.k
        active_slots = min(self.s, total_packets)
        self._remaining = total_packets
        self._active = True
        self._reset_slot_state()
        # start() models the framework (re)launching the worker process,
        # so it revives a crashed/failed endpoint.
        self.failed = False
        self.crashed = False
        self._base_off = 0
        self._active_slots = active_slots
        self.stats = WorkerStats(start_time=self.sim.now)

        if self._train and active_slots > 1:
            self._send_chunks(
                [(i, int(self._next_ver[i]), self.k * i) for i in range(active_slots)]
            )
        else:
            for i in range(active_slots):
                self._send_chunk(idx=i, ver=int(self._next_ver[i]), off=self.k * i)

    def _reset_slot_state(self) -> None:
        """Per-aggregation reset: clear the SoA core in place, rebind the
        array aliases (tests may have rebound them), and reallocate the
        object-reference columns."""
        st = self._st
        st.begin(start_time=self.sim.now)
        self._slot_off = st.off
        self._slot_ver = st.ver
        self._slot_sent_at = st.sent_at
        self._slot_retransmitted = st.retransmitted
        self._slot_retries = st.retries
        self._slot_outstanding = st.outstanding
        self._slot_packet = [None] * self.s
        self._slot_timer = [None] * self.s
        # reusable buffers are per-aggregation: wid/epoch/addressing may
        # change between tensors (reconfigure), never within one
        self._slot_buf = [None] * self.s
        self._slot_frame = [None] * self.s

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _chunk_vector(self, off: int) -> np.ndarray | None:
        if self._phantom:
            return None
        assert self._tensor is not None
        return self._tensor[off : off + self.k]

    def _send_chunk(self, idx: int, ver: int, off: int, arm: bool = True) -> None:
        """Send one chunk; the TX-side instrumentation (the old
        ``_transmit``) is inlined -- this runs once per in-order send.

        ``arm=False`` skips the timer arming: the batch RX body computes
        the whole batch's deadlines vectorially after all its sends."""
        if self.reuse_buffers and (packet := self._slot_buf[idx]) is not None:
            # hot path: mutate the slot's dedicated packet + frame in
            # place (see the reuse_buffers note in __init__)
            packet.ver = ver
            packet.off = off
            packet.vector = None if self._phantom else self._tensor[off : off + self.k]
            frame = self._slot_frame[idx]
            frame.corrupted = False  # may have been flipped on a past trip
        else:
            packet = SwitchMLPacket(
                wid=self.wid,
                ver=ver,
                idx=idx,
                off=off,
                num_elements=self.k,
                vector=self._chunk_vector(off),
                epoch=self.epoch,
                job_id=self.job_id,
            )
            frame = packet.to_frame(
                src=self.host.name, dst=self.switch_addr,
                bytes_per_element=self.bytes_per_element,
            )
            if self.reuse_buffers:
                self._slot_buf[idx] = packet
                self._slot_frame[idx] = frame
        self._slot_off[idx] = off
        self._slot_ver[idx] = ver
        self._next_ver[idx] = 1 - ver  # the version the NEXT phase uses
        self._slot_packet[idx] = packet
        if self._burst:
            self._slot_outstanding[idx] = True
        self._slot_sent_at[idx] = self.sim.now
        self._slot_retransmitted[idx] = False
        self._slot_retries[idx] = 0
        self.stats.packets_sent += 1
        if self._m_on:
            self._m_sent.inc()
        if self.trace is not None:
            self.trace.tick("sent", self.sim.now)
        if self._trace_packets and self._tracer.enabled:
            self._tracer.emit(
                "packet.tx", self.sim.now, cat="packet", actor=self._actor,
                slot=idx, ver=ver, off=off,
            )
        self.host.send(frame)
        if not arm:
            return
        if self._burst:
            self._arm_deadline(idx)
        else:
            self._arm_timer(idx)

    def _send_chunks(
        self, items: list[tuple[int, int, int]], arm: bool = True
    ) -> None:
        """Batched :meth:`_send_chunk` over a slot group (train egress).

        ``items`` is ``[(idx, ver, off), ...]`` in slot order.  Per-slot
        bookkeeping replicates :meth:`_send_chunk` exactly; the fresh
        frames are built in one :func:`to_frames` call and the whole
        group leaves through :meth:`Host.send_train` (split by
        ``train_cap``), after which the timers are armed in slot order
        -- the same relative timer-event scheduling order the per-chunk
        loop produces (TX events and timers never share a fire time:
        I/O latency is microseconds, timeouts are 100 us and up).
        """
        now = self.sim.now
        host = self.host
        reuse = self.reuse_buffers
        phantom = self._phantom
        tensor = self._tensor
        k = self.k
        burst = self._burst
        slot_buf = self._slot_buf
        slot_frame = self._slot_frame
        slot_off = self._slot_off
        slot_ver = self._slot_ver
        next_ver = self._next_ver
        slot_packet = self._slot_packet
        slot_outstanding = self._slot_outstanding
        slot_sent_at = self._slot_sent_at
        slot_retransmitted = self._slot_retransmitted
        slot_retries = self._slot_retries
        n = len(items)
        frames: list[Frame | None] = [None] * n
        fresh_pos: list[int] = []
        fresh_packets: list[SwitchMLPacket] = []
        for pos, (idx, ver, off) in enumerate(items):
            if reuse and (packet := slot_buf[idx]) is not None:
                packet.ver = ver
                packet.off = off
                packet.vector = None if phantom else tensor[off : off + k]
                frame = slot_frame[idx]
                frame.corrupted = False
                frames[pos] = frame
            else:
                packet = SwitchMLPacket(
                    wid=self.wid,
                    ver=ver,
                    idx=idx,
                    off=off,
                    num_elements=k,
                    vector=None if phantom else tensor[off : off + k],
                    epoch=self.epoch,
                    job_id=self.job_id,
                )
                fresh_pos.append(pos)
                fresh_packets.append(packet)
            slot_packet[idx] = packet
        # SoA bookkeeping in one fancy-indexed pass per array (slots are
        # distinct within a train, so store order is unobservable)
        idx_a = np.fromiter((it[0] for it in items), dtype=np.int64, count=n)
        ver_a = np.fromiter((it[1] for it in items), dtype=np.int64, count=n)
        slot_off[idx_a] = np.fromiter((it[2] for it in items), dtype=np.int64, count=n)
        slot_ver[idx_a] = ver_a
        next_ver[idx_a] = 1 - ver_a
        if burst:
            slot_outstanding[idx_a] = True
        slot_sent_at[idx_a] = now
        slot_retransmitted[idx_a] = False
        slot_retries[idx_a] = 0
        if fresh_packets:
            built = to_frames(
                fresh_packets,
                src=host.name,
                dst=self.switch_addr,
                bytes_per_element=self.bytes_per_element,
            )
            for i, pos in enumerate(fresh_pos):
                frames[pos] = built[i]
                if reuse:
                    idx = items[pos][0]
                    slot_buf[idx] = fresh_packets[i]
                    slot_frame[idx] = built[i]
        self.stats.packets_sent += n
        if self._m_on:
            self._m_sent.inc(n)
        if self.trace is not None:
            tick = self.trace.tick
            for _ in range(n):
                tick("sent", now)
        if self._trace_packets and self._tracer.enabled:
            emit = self._tracer.emit
            for idx, ver, off in items:
                emit(
                    "packet.tx", now, cat="packet", actor=self._actor,
                    slot=idx, ver=ver, off=off,
                )
        cap = self.train_cap
        if cap and n > cap:
            for s0 in range(0, n, cap):
                host.send_train(frames[s0 : s0 + cap])
        else:
            host.send_train(frames)
        if not arm:
            return
        if burst:
            arm_deadline = self._arm_deadline
            for idx, _ver, _off in items:
                arm_deadline(idx)
        else:
            arm_timer = self._arm_timer
            for idx, _ver, _off in items:
                arm_timer(idx)

    def current_timeout(self) -> float:
        """The retransmission timeout in force right now.

        Adaptive mode uses Jacobson's SRTT + 4 x RTTVAR with a
        half-SRTT variance floor: when the RTT is steady the variance
        term collapses and a bare SRTT-sized RTO would fire on every
        scheduling wiggle (the granularity problem classic TCP solves
        with a minimum RTO).
        """
        if self.timeout_mode == "fixed" or self._srtt is None:
            return self.timeout_s
        rto = self._srtt + max(4.0 * self._rttvar, 0.5 * self._srtt)
        # A queue building up (congestion, straggler) ramps the RTT much
        # faster than the EWMA tracks; the decaying peak keeps the RTO
        # above the recent worst case during such transients.
        rto = max(rto, 1.25 * self._rtt_peak)
        return min(self.max_timeout_s, max(self.min_timeout_s, rto))

    def _observe_rtt(self, sample: float) -> None:
        """Jacobson/Karn update; callers must not feed ambiguous samples
        (responses to retransmitted packets)."""
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            err = sample - self._srtt
            self._srtt += 0.125 * err
            self._rttvar += 0.25 * (abs(err) - self._rttvar)
        self._rtt_peak = max(sample, self._rtt_peak * 0.995)

    def _arm_timer(self, idx: int) -> None:
        # runs once per (re)transmission; _cancel_timer and the fixed-mode
        # current_timeout() are inlined (the slot entry is overwritten
        # below, so the cancel need not clear it)
        timer = self._slot_timer[idx]
        if timer is not None:
            timer.cancel()
        if self.timeout_mode == "fixed" or self._srtt is None:
            base = self.timeout_s
        else:
            base = self.current_timeout()
        duration = base * self._slot_backoff[idx]
        if duration > self.max_timeout_s:
            duration = self.max_timeout_s
        self._slot_timer[idx] = self._schedule_at(
            self.sim.now + duration, self._on_timeout, idx
        )

    def _arm_deadline(self, idx: int) -> None:
        """Burst-mode timer arming: write the slot's expiry into the SoA
        deadline array and arm an engine timer to cover it.

        The timeout duration is computed exactly as in :meth:`_arm_timer`.
        With ``burst_epsilon == 0`` an engine event is scheduled per
        arming, exactly as in packet mode: the engine breaks time ties
        by scheduling order, so giving burst-mode expiries the same
        scheduling points keeps same-instant interleavings with every
        other actor's events identical (the eps=0 bit-identical
        promise).  With ``burst_epsilon > 0`` the schedule is already
        epsilon-perturbed, so one *singleton* timer at the earliest
        armed deadline covers the whole pool; :meth:`_run_deadlines`
        drains expiries through ``WorkerSlotState.due()`` and re-arms.
        Either way the SoA bookkeeping -- ``deadline`` mirrors every
        armed expiry (``+inf`` = none) and ``arm_seq`` the arming order
        -- makes pool-wide timer state one array scan.
        """
        st = self._st
        if self.timeout_mode == "fixed" or self._srtt is None:
            base = self.timeout_s
        else:
            base = self.current_timeout()
        duration = base * st.backoff[idx]
        if duration > self.max_timeout_s:
            duration = self.max_timeout_s
        d = self.sim.now + duration
        st.deadline[idx] = d
        st.arm_seq[idx] = self._arm_counter
        self._arm_counter += 1
        if self._single_timer:
            if d < self._deadline_armed_at:
                self._rearm_singleton(d)
            return
        timer = self._slot_timer[idx]
        if timer is not None:
            timer.cancel()
        self._slot_timer[idx] = self._schedule_at(d, self._fire_deadline, idx)

    def _rearm_singleton(self, d: float) -> None:
        ev = self._deadline_event
        if ev is not None:
            ev.cancel()
        self._deadline_armed_at = d
        self._deadline_event = self._schedule_at(d, self._run_deadlines)

    def _run_deadlines(self) -> None:
        """Singleton-timer callback (eps-window burst mode): drain every
        expired deadline in ``(deadline, arm_seq)`` order -- the order
        per-slot timers would have fired in -- then re-arm at the next
        earliest deadline.  Spurious wake-ups (the covered deadline was
        cleared by a result) simply re-arm."""
        self._deadline_event = None
        self._deadline_armed_at = _INF
        if not self._active:
            return
        st = self._st
        now = self.sim.now
        fired = 0
        due = st.due(now)
        if due.size:
            deadline = st.deadline
            for idx in due:
                i = int(idx)
                deadline[i] = _INF
                self._on_timeout(i)
                fired += 1
                if not self._active:
                    break
        if self._active:
            # _on_timeout -> _arm_deadline may already have re-armed;
            # ensure the singleton covers the pool-wide minimum
            md = st.min_deadline()
            if md < self._deadline_armed_at:
                self._rearm_singleton(md)
        if fired and self._tracer.enabled:
            self._tracer.emit(
                "burst.timeout", now, cat="burst", actor=self._actor, fired=fired,
            )

    def _fire_deadline(self, idx: int) -> None:
        """Burst mode's timer callback: consume the slot's deadline and
        resend.  The deadline is cleared *before* the resend re-arms it,
        and a per-burst aggregate trace record replaces packet mode's
        per-packet ``packet.retx`` event."""
        if not self._active:
            return
        self._st.deadline[idx] = _INF
        self._on_timeout(idx)
        if self._tracer.enabled:
            self._tracer.emit(
                "burst.timeout", self.sim.now, cat="burst",
                actor=self._actor, fired=1, slot=idx,
            )

    def _cancel_timer(self, idx: int) -> None:
        timer = self._slot_timer[idx]
        if timer is not None:
            timer.cancel()
            self._slot_timer[idx] = None

    def _on_timeout(self, idx: int) -> None:
        """Algorithm 4's timeout handler: resend the same packet."""
        if not self._active:
            return
        original = self._slot_packet[idx]
        if original is None:
            return
        self.stats.timeouts += 1
        self._slot_retries[idx] += 1
        if self.max_retries is not None and self._slot_retries[idx] > self.max_retries:
            self._fail()
            return
        self._slot_retransmitted[idx] = True
        self._slot_backoff[idx] = min(64.0, self._slot_backoff[idx] * 2.0)
        # Resends are always freshly allocated, even with reuse_buffers:
        # a resend can be in flight concurrently with its original, so
        # the slot's reusable frame must not carry it.
        resend = SwitchMLPacket(
            wid=original.wid,
            ver=original.ver,
            idx=original.idx,
            off=original.off,
            num_elements=original.num_elements,
            vector=original.vector,
            is_retransmission=True,
            epoch=original.epoch,
            job_id=original.job_id,
        )
        frame = resend.to_frame(
            src=self.host.name, dst=self.switch_addr,
            bytes_per_element=self.bytes_per_element,
        )
        stats = self.stats
        stats.packets_sent += 1
        stats.retransmissions += 1
        if self._m_on:
            self._m_sent.inc()
            self._m_retx.inc()
            self._h_retx_gap.observe(self.sim.now - self._slot_sent_at[idx])
        if self.trace is not None:
            self.trace.tick("resent", self.sim.now)
        if self._trace_packets and self._tracer.enabled:
            self._tracer.emit(
                "packet.retx", self.sim.now, cat="packet", actor=self._actor,
                slot=resend.idx, ver=resend.ver, off=resend.off,
            )
        self.host.send(frame)
        if self._burst:
            self._arm_deadline(idx)
        else:
            self._arm_timer(idx)

    def _deactivate(self) -> None:
        """Stop sending and retransmitting; shared by every stop path."""
        self._active = False
        self._cancel_all_timers()

    def _fail(self) -> None:
        """The *detector* path: this worker is alive but gives up because
        a peer (or the switch) appears gone (``max_retries`` exceeded).

        Sets ``failed``, stops acting, and -- being alive -- reports
        through ``on_failure`` so the framework / controller can tear the
        job down and restart from a checkpoint (the recovery model the
        paper assumes).  Contrast with :meth:`crash`.
        """
        if self.failed:
            return
        self.failed = True
        self._deactivate()
        if self.on_failure is not None:
            self.on_failure(self.wid)

    def crash(self) -> None:
        """Simulate this worker dying mid-aggregation (fail-stop).

        The *failure* path, unified with :meth:`_fail`'s teardown: both
        set the observable ``failed`` flag and stop all activity, but a
        crashed worker is dead -- it does NOT fire ``on_failure`` (a dead
        process cannot report its own death) and it stops heartbeating;
        peers and the control plane detect it via retransmission timeouts
        and missed heartbeats respectively.  ``crashed`` distinguishes
        the corpse from a live worker that merely gave up.  A later
        :meth:`start` revives it (the framework relaunching the process).
        """
        self.failed = True
        self.crashed = True
        self._deactivate()
        self._stop_heartbeats()

    def quiesce(self) -> None:
        """Control-plane pause: stop sending/retransmitting but keep all
        tensor and stream state (and keep heartbeating -- the worker is
        alive, just held back while the controller reconfigures the
        switch).  Resume with :meth:`start` (from a checkpoint) or
        :meth:`restart_from` (from a stream offset)."""
        self._deactivate()

    def reconfigure(
        self,
        wid: int | None = None,
        num_workers: int | None = None,
        epoch: int | None = None,
        pool_size: int | None = None,
    ) -> None:
        """Control-plane reconfiguration after a membership change.

        Only legal while not actively aggregating (quiesce first): the
        protocol identity (``wid``), group size, pool geometry, and epoch
        all feed packet construction and must not change mid-stream.
        """
        if self._active:
            raise RuntimeError(
                f"worker {self.wid}: quiesce before reconfiguring"
            )
        if wid is not None:
            self.wid = wid
        if num_workers is not None:
            self.n = num_workers
        if epoch is not None:
            self.epoch = epoch
        if pool_size is not None and pool_size != self.s:
            self.s = pool_size
            # fresh pool geometry: a fresh SoA core (backoff and versions
            # restart too -- the switch's registers were reinstalled)
            st = WorkerSlotState(pool_size)
            self._st = st
            self._slot_backoff = st.backoff
            self._next_ver = st.next_ver
            self._slot_off = st.off
            self._slot_ver = st.ver
            self._slot_sent_at = st.sent_at
            self._slot_retransmitted = st.retransmitted
            self._slot_retries = st.retries
            self._slot_outstanding = st.outstanding

    def _cancel_all_timers(self) -> None:
        for idx in range(len(self._slot_timer)):
            self._cancel_timer(idx)
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        self._deadline_armed_at = _INF
        if self._burst:
            self._st.clear_deadlines()

    # ------------------------------------------------------------------
    # Heartbeats (control plane)
    # ------------------------------------------------------------------
    def enable_heartbeats(self, interval_s: float) -> None:
        """Emit a :class:`Heartbeat` through the dataplane every
        ``interval_s`` seconds until :meth:`crash` (or
        :meth:`stop_heartbeats`).  Quiescing does not stop heartbeats."""
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.stop_heartbeats()
        self._hb_interval = interval_s
        self._hb_timer = self.sim.schedule(interval_s, self._heartbeat_tick)

    def stop_heartbeats(self) -> None:
        self._stop_heartbeats()

    def _stop_heartbeats(self) -> None:
        if self._hb_timer is not None:
            self._hb_timer.cancel()
            self._hb_timer = None

    def _heartbeat_tick(self) -> None:
        beat = Heartbeat(
            member=self.member_id,
            epoch=self.epoch,
            progress=self.stats.results_received,
        )
        self.host.send(
            beat.to_frame(src=self.host.name, dst=self.switch_addr,
                          flow_key=self.wid)
        )
        assert self._hb_interval is not None
        self._hb_timer = self.sim.schedule(self._hb_interval, self._heartbeat_tick)

    # ------------------------------------------------------------------
    # Stream checkpoint / replay (control plane)
    # ------------------------------------------------------------------
    def completed_prefix_elements(self) -> int:
        """Largest offset ``m`` (a multiple of ``k``) such that every
        chunk with ``off < m`` of the current (possibly interrupted)
        aggregation has been received.

        This is the worker-side stream state the controller replays from
        after a switch reboot: chunks below the prefix are intact;
        everything at or above it is re-sent.
        """
        if self._size == 0:
            return 0
        if self.done:
            return self._size
        if len(self._slot_off) == 0 or self._active_slots == 0:
            return self._base_off
        stride = self.k * self.s
        lowest_unreceived = self._size
        for idx in range(self._active_slots):
            if self._slot_packet[idx] is not None:
                low = self._slot_off[idx]
            else:
                # outstanding chunk consumed and the stripe either
                # advanced past the end (exhausted) or never re-armed
                nxt = self._slot_off[idx] + stride
                low = nxt if nxt < self._size else self._size
            lowest_unreceived = min(lowest_unreceived, low)
        return int(lowest_unreceived)

    def restart_from(
        self, offset_elements: int, reset_versions: bool = False
    ) -> None:
        """Resume an interrupted aggregation from a chunk-aligned stream
        offset, keeping the tensor and all results below the offset.

        Used by switch-reboot recovery: membership is unchanged, so the
        already-aggregated prefix is still valid; the switch program was
        reinstalled fresh, so everything from ``offset_elements`` onward
        is re-streamed (chunks received beyond the prefix are simply
        re-aggregated to the same values).

        ``reset_versions`` restarts every slot stripe at pool version 0.
        The slot-version invariant is that all contributors to a pool use
        the same version for the same stripe; it survives a replay only
        if every peer's per-slot version counters agree at the restart
        offset.  Peers that stalled at different points before the
        failure (e.g. racks behind a flapped trunk while other racks kept
        streaming) violate that, and replaying into the fresh pool with
        mixed versions strands every slot half-seen on both versions.
        Since the recovery installs zeroed pools anyway, a fleet-wide
        version reset at the common offset restores the invariant.
        """
        if self._active:
            raise RuntimeError(f"worker {self.wid} already aggregating")
        if self._size == 0 or (self._tensor is None and not self._phantom):
            raise RuntimeError("no interrupted aggregation to resume")
        if offset_elements < 0 or offset_elements > self._size:
            raise ValueError(f"offset {offset_elements} outside tensor")
        if offset_elements % self.k:
            raise ValueError(
                f"offset {offset_elements} must be a multiple of k={self.k}"
            )
        total_packets = (self._size - offset_elements) // self.k
        active_slots = min(self.s, total_packets)
        self._remaining = total_packets
        self._reset_slot_state()
        if reset_versions:
            self._next_ver[:] = 0
        self.failed = False
        self.crashed = False
        self._base_off = offset_elements
        self._active_slots = active_slots
        self._active = True
        if total_packets == 0:
            self._finish()
            return
        if self._train and active_slots > 1:
            self._send_chunks(
                [
                    (i, int(self._next_ver[i]), offset_elements + self.k * i)
                    for i in range(active_slots)
                ]
            )
        else:
            for i in range(active_slots):
                self._send_chunk(
                    idx=i, ver=int(self._next_ver[i]), off=offset_elements + self.k * i
                )

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        if frame.corrupted:
            # SS3.4: checksum failure; discard and let the timeout recover.
            self.stats.corrupt_discarded += 1
            return
        packet = frame.message
        if not isinstance(packet, SwitchMLPacket) or not packet.from_switch:
            return
        self._on_result(packet)

    def on_frames(self, frames: list[Frame]) -> None:
        """Burst-granularity RX entry: one call per group of frames the
        host dispatched in the same drain window, in arrival order.

        Large groups go through the vectorized batch body
        (:meth:`_on_results_batch`); small ones (and the cases the batch
        body excludes) replay the per-result path, whose semantics are
        the reference -- below ``_RX_BATCH_MIN`` results the array
        setup costs more than the loop it replaces.  The trace record
        is one per-burst aggregate instead of per-packet events."""
        stats = self.stats
        results: list[SwitchMLPacket] = []
        for frame in frames:
            if frame.corrupted:
                # SS3.4: checksum failure; discard, timeout recovers
                stats.corrupt_discarded += 1
                continue
            packet = frame.message
            if isinstance(packet, SwitchMLPacket) and packet.from_switch:
                results.append(packet)
        if results:
            if len(results) < self._RX_BATCH_MIN or not self._active:
                on_result = self._on_result
                for p in results:
                    on_result(p)
            else:
                self._on_results_batch(results)
        if self._tracer.enabled:
            self._tracer.emit(
                "burst.rx", self.sim.now, cat="burst", actor=self._actor,
                frames=len(frames), results=len(results),
            )

    def _on_results_batch(self, pkts: list[SwitchMLPacket]) -> None:
        """Vectorized result consumption: the whole batch's stale
        filtering, timer clearing, RTT accounting, and next-chunk timer
        math run as array operations; only the per-chunk sends (and the
        order-sensitive Jacobson EWMA) remain loops.

        Two cases fall back to the exact per-result loop:

        * **adaptive timeout mode** -- there the EWMA feeds each send's
          RTO, and packet mode interleaves (sample i, send i, sample
          i+1, ...); batching the samples ahead of the sends would skew
          the RTOs.  Fixed mode's RTO never reads the estimator, so
          batching is exact (per-slot backoff is reset before the
          slot's own send in both orders).
        * **the batch that completes the tensor** -- _finish() may
          restart the worker synchronously (next aggregation), and any
          frames after the completing result must observe the restarted
          state exactly as the sequential path would.
        """
        st = self._st
        m = len(pkts)
        epoch = self.epoch
        idx_a = np.fromiter((p.idx for p in pkts), dtype=np.int64, count=m)
        off_a = np.fromiter((p.off for p in pkts), dtype=np.int64, count=m)
        ver_a = np.fromiter((p.ver for p in pkts), dtype=np.int64, count=m)
        # stale filtering: epoch first (a stale-epoch idx may be out of
        # range for this pool geometry), then the outstanding-phase match
        if all(p.epoch == epoch for p in pkts):
            valid = (
                st.outstanding[idx_a]
                & (off_a == st.off[idx_a])
                & (ver_a == st.ver[idx_a])
            )
        else:
            valid = np.zeros(m, dtype=bool)
            ok = np.fromiter((p.epoch == epoch for p in pkts), dtype=bool, count=m)
            ok_i = np.nonzero(ok)[0]
            if ok_i.size:
                ia = idx_a[ok_i]
                valid[ok_i] = (
                    st.outstanding[ia]
                    & (off_a[ok_i] == st.off[ia])
                    & (ver_a[ok_i] == st.ver[ia])
                )
        acc = np.nonzero(valid)[0]
        if acc.size > 1:
            # intra-batch duplicates for one slot (multicast racing a
            # unicast shadow read): first occurrence wins, the rest are
            # stale -- exactly what the sequential path does, because
            # consuming the first changes the slot's outstanding phase.
            # Duplicates are rare, so a set-size probe screens the batch
            # before paying for np.unique's sort.
            slots_acc = idx_a[acc]
            if len(set(slots_acc.tolist())) != slots_acc.size:
                uniq, first_pos = np.unique(slots_acc, return_index=True)
                acc = acc[np.sort(first_pos)]
        n_acc = int(acc.size)
        if n_acc and (self.timeout_mode != "fixed" or n_acc == self._remaining):
            on_result = self._on_result
            for p in pkts:
                on_result(p)
            return
        stats = self.stats
        n_stale = m - n_acc
        if n_stale:
            stats.stale_results_ignored += n_stale
            if self._m_on:
                self._m_stale.inc(n_stale)
        if not n_acc:
            return

        si = idx_a[acc]
        now = self.sim.now
        # timers: one masked store in singleton mode, per-slot cancels
        # otherwise (eps=0 keeps per-slot events; lazy-cancel order is
        # unobservable, so batching the cancels ahead of the sends is
        # exact)
        st.deadline[si] = _INF
        if not self._single_timer:
            slot_timer = self._slot_timer
            for i in si:
                timer = slot_timer[i]
                if timer is not None:
                    timer.cancel()
                    slot_timer[i] = None
        samples = now - st.sent_at[si]
        stats.results_received += n_acc
        stats.rtt_sum += float(samples.sum())
        stats.rtt_count += n_acc
        if self._m_on:
            self._m_results.inc(n_acc)
            observe = self._h_rtt.observe
            for x in samples:
                observe(float(x))
        # Karn's rule, whole-batch: unambiguous samples feed the per-slot
        # accumulators and clear the backoff; the scalar EWMA stays a
        # loop in arrival order (its fixed point depends on sample order)
        unamb = ~st.retransmitted[si]
        if unamb.any():
            u_si = si[unamb]
            u_samples = samples[unamb]
            st.rtt_sum[u_si] += u_samples
            st.rtt_count[u_si] += 1
            st.backoff[u_si] = 1.0
            srtt = self._srtt
            rttvar = self._rttvar
            peak = self._rtt_peak
            for x in u_samples.tolist():
                if srtt is None:
                    srtt = x
                    rttvar = x / 2.0
                else:
                    err = x - srtt
                    srtt += 0.125 * err
                    rttvar += 0.25 * (abs(err) - rttvar)
                decayed = peak * 0.995
                peak = x if x > decayed else decayed
            self._srtt = srtt
            self._rttvar = rttvar
            self._rtt_peak = peak
        # consume: results land in the tensor, slots free up
        if not self._phantom:
            result = self._result
            k = self.k
            for j in acc:
                p = pkts[j]
                if p.vector is not None:
                    result[p.off : p.off + k] = p.vector
        st.outstanding[si] = False
        slot_packet = self._slot_packet
        for i in si.tolist():
            slot_packet[i] = None
        self._remaining -= n_acc

        # next-chunk sends, in the arrival order of their credits.  The
        # completing batch was routed to the fallback above, so every
        # accepted result either advances its slot or retires it --
        # _finish() can never trigger here.
        next_off = off_a[acc] + self.k * self.s
        send = next_off < self._size
        if not send.any():
            return
        send_pos = np.nonzero(send)[0]
        if self._single_timer:
            # batch timer math: send the frames without arming, then
            # compute every deadline in one vector op and re-arm the
            # singleton once
            if self._train and send_pos.size > 1:
                self._send_chunks(
                    [
                        (int(si[j]), 1 - int(ver_a[acc[j]]), int(next_off[j]))
                        for j in send_pos
                    ],
                    arm=False,
                )
            else:
                for j in send_pos:
                    self._send_chunk(
                        idx=int(si[j]),
                        ver=1 - int(ver_a[acc[j]]),
                        off=int(next_off[j]),
                        arm=False,
                    )
            sent_slots = si[send_pos]
            dur = self.timeout_s * st.backoff[sent_slots]
            np.minimum(dur, self.max_timeout_s, out=dur)
            deadlines = now + dur
            st.deadline[sent_slots] = deadlines
            c = self._arm_counter
            st.arm_seq[sent_slots] = np.arange(c, c + sent_slots.size)
            self._arm_counter = c + int(sent_slots.size)
            dmin = float(deadlines.min())
            if dmin < self._deadline_armed_at:
                self._rearm_singleton(dmin)
        elif self._train and send_pos.size > 1:
            self._send_chunks(
                [
                    (int(si[j]), 1 - int(ver_a[acc[j]]), int(next_off[j]))
                    for j in send_pos
                ]
            )
        else:
            for j in send_pos:
                self._send_chunk(
                    idx=int(si[j]),
                    ver=1 - int(ver_a[acc[j]]),
                    off=int(next_off[j]),
                )

    def _on_result(self, p: SwitchMLPacket) -> None:
        """The per-result hot path (one call per received result frame);
        locals are hoisted and instruments gated on the cached flags."""
        if not self._active:
            return
        stats = self.stats
        idx, off, ver = p.idx, p.off, p.ver
        # Stale results can arrive: a pre-reconfiguration result whose
        # slot coordinates belong to a previous pool geometry (epoch), or
        # e.g. a unicast retransmitted result racing with the multicast
        # copy.  The (off, ver) pair identifies the phase; anything not
        # matching the slot's outstanding chunk has already been consumed.
        # Epoch first: a stale-epoch idx may be out of range here.  The
        # outstanding chunk's coordinates are read off its packet object
        # (kept consistent with the SoA ``off``/``ver`` arrays by
        # _send_chunk): this check runs per received result, and a list
        # access plus attribute reads beat two NumPy scalar lookups.
        if p.epoch != self.epoch:
            outstanding = None
        else:
            outstanding = self._slot_packet[idx]
        if (
            outstanding is None
            or off != outstanding.off
            or ver != outstanding.ver
        ):
            stats.stale_results_ignored += 1
            if self._m_on:
                self._m_stale.inc()
            return

        if self._burst:
            self._st.deadline[idx] = _INF
        timer = self._slot_timer[idx]
        if timer is not None:
            timer.cancel()
            self._slot_timer[idx] = None
        now = self.sim.now
        stats.results_received += 1
        rtt_sample = now - self._slot_sent_at[idx]
        stats.rtt_sum += rtt_sample
        stats.rtt_count += 1
        if self._m_on:
            self._m_results.inc()
            self._h_rtt.observe(rtt_sample)
        if self._trace_packets and self._tracer.enabled:
            self._tracer.emit(
                "packet.rx", now, cat="packet", actor=self._actor,
                slot=idx, ver=ver, off=off, rtt=rtt_sample,
            )
        if not self._slot_retransmitted[idx]:
            # Karn's rule: only unambiguous samples feed the estimator --
            # and only an unambiguous exchange clears the backoff
            # (RFC 6298 SS5.7: resetting it on a retransmitted exchange
            # lets a low-biased SRTT re-trigger the same spurious
            # timeout forever).  _observe_rtt's body, inlined: this runs
            # once per in-order result.
            st = self._st
            st.rtt_sum[idx] += rtt_sample
            st.rtt_count[idx] += 1
            srtt = self._srtt
            if srtt is None:
                self._srtt = rtt_sample
                self._rttvar = rtt_sample / 2.0
            else:
                err = rtt_sample - srtt
                self._srtt = srtt + 0.125 * err
                self._rttvar += 0.25 * (abs(err) - self._rttvar)
            self._rtt_peak = max(rtt_sample, self._rtt_peak * 0.995)
            self._slot_backoff[idx] = 1.0
        if not self._phantom and p.vector is not None:
            assert self._result is not None
            self._result[off : off + self.k] = p.vector
        self._slot_packet[idx] = None
        if self._burst:
            self._slot_outstanding[idx] = False
        self._remaining -= 1

        next_off = off + self.k * self.s
        if next_off < self._size:
            self._send_chunk(idx=idx, ver=1 - ver, off=next_off)
        elif self._remaining == 0:
            self._finish()

    def _finish(self) -> None:
        self._active = False
        self.stats.finish_time = self.sim.now
        self._st.tat_finish = self.sim.now
        self._h_tat.observe(self.stats.tensor_aggregation_time)
        if self._tracer.enabled:
            self._tracer.span(
                "worker.aggregate", self.stats.start_time, self.sim.now,
                cat="tat", actor=self._actor,
                packets=self.stats.packets_sent,
                retransmissions=self.stats.retransmissions,
            )
        self._cancel_all_timers()
        if self.on_complete is not None:
            self.on_complete(self.wid, self.sim.now)

    # ------------------------------------------------------------------
    @property
    def result(self) -> np.ndarray | None:
        """The aggregated tensor (valid once complete; None in phantom mode)."""
        return self._result

    @property
    def done(self) -> bool:
        return not self._active and not np.isnan(self.stats.finish_time)
