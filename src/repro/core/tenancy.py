"""Multi-job / multi-tenant aggregation (SS6 "Multi-job (tenancy)").

The paper: "Every job requires a separate pool of aggregators to ensure
correctness.  As discussed, the resources used for one reduction are much
less than 10% of switch capabilities. ... Thus, an admission mechanism
would be needed to control the assignment of jobs to pools."

This module builds that admission mechanism and the job-multiplexing
dataplane:

* :class:`PoolAllocator` -- tracks the pipeline's SRAM budget and admits
  or rejects jobs, handing each an isolated aggregator pool;
* :class:`MultiJobDataplane` -- dispatches ingress packets to their job's
  switch program by the packet's ``job_id`` field and routes results back
  to that job's workers only;
* :class:`MultiTenantRack` -- a rack whose hosts run several jobs'
  workers side by side, for end-to-end isolation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.packet import SwitchMLPacket
from repro.core.switch_program import SwitchAction, SwitchMLProgram
from repro.core.worker import SwitchMLWorker, WorkerStats
from repro.dataplane.pipeline import TOFINO, PipelineModel
from repro.dataplane.resources import switchml_resource_report
from repro.net.host import HostSpec
from repro.net.link import LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Frame
from repro.net.switchchassis import PortDecision
from repro.net.topology import Rack, RackSpec, build_rack
from repro.obs.base import NULL_OBS
from repro.sim.engine import Simulator

__all__ = [
    "AdmissionError",
    "JobHandle",
    "MultiJobDataplane",
    "MultiTenantRack",
    "PoolAllocator",
]


class AdmissionError(RuntimeError):
    """The switch cannot host another aggregator pool."""


@dataclass
class JobHandle:
    """An admitted job's slice of the switch.

    ``epoch`` versions the lease: :meth:`PoolAllocator.renew` replaces a
    job's lease (same ``job_id``) with a fresh program whose epoch is one
    higher, which is how the control plane fences in-flight packets from
    a pre-failure configuration (see :mod:`repro.controlplane`).
    """

    job_id: int
    num_workers: int
    pool_size: int
    elements_per_packet: int
    program: SwitchMLProgram
    sram_bytes: int
    pipeline_id: int = 0
    epoch: int = 0


class PoolAllocator:
    """Admission control for aggregator pools across a chip's pipelines.

    Jobs are admitted while each pipeline's summed register SRAM stays
    under ``budget_fraction`` of its SRAM (a conservative operator
    policy; the dataplane must keep most of its memory for forwarding
    state, SS3.1).  A job's state lives entirely within one pipeline --
    "modern switch chips comprise multiple independent pipelines, each
    with its own resources" (SS6) -- so the allocator also packs jobs
    onto pipelines (first fit) and enforces each pipeline's port budget.
    """

    def __init__(
        self,
        pipeline: PipelineModel = TOFINO,
        budget_fraction: float = 0.10,
        num_pipelines: int | None = None,
    ):
        if not 0 < budget_fraction <= 1:
            raise ValueError("budget fraction must be in (0, 1]")
        self.pipeline = pipeline
        self.num_pipelines = (
            pipeline.num_pipelines if num_pipelines is None else num_pipelines
        )
        if self.num_pipelines < 1:
            raise ValueError("need at least one pipeline")
        self.budget_bytes = int(pipeline.sram_bytes * budget_fraction)
        self.jobs: dict[int, JobHandle] = {}
        self._next_job_id = 0
        self.rejections = 0
        self.instrument(None)

    def instrument(self, obs, clock: Callable[[], float] | None = None) -> None:
        """Report admission-control activity through an
        :class:`repro.obs.base.Observability` layer.  Programs created by
        subsequent :meth:`admit` / :meth:`renew` calls inherit the layer
        and clock, so a managed run's lease renewals land on the same
        trace as the protocol events.  ``None`` restores the null layer.
        """
        self._obs = obs if obs is not None else NULL_OBS
        self._clock = clock if clock is not None else (lambda: 0.0)
        metrics = self._obs.metrics
        self._m_admitted = metrics.counter(
            "pool_admissions_total", "jobs admitted to aggregator pools"
        )
        self._m_rejected = metrics.counter(
            "pool_rejections_total", "pool admission rejections"
        )
        self._m_renewed = metrics.counter(
            "pool_renewals_total", "lease renewals (epoch bumps)"
        )
        self._g_sram = metrics.gauge(
            "pool_allocated_sram_bytes", "aggregator SRAM currently leased"
        )

    @property
    def allocated_bytes(self) -> int:
        return sum(j.sram_bytes for j in self.jobs.values())

    def pipeline_usage(self, pipeline_id: int) -> tuple[int, int]:
        """(SRAM bytes, ports) consumed on one pipeline."""
        sram = sum(
            j.sram_bytes for j in self.jobs.values()
            if j.pipeline_id == pipeline_id
        )
        ports = sum(
            j.num_workers for j in self.jobs.values()
            if j.pipeline_id == pipeline_id
        )
        return sram, ports

    @property
    def free_bytes(self) -> int:
        """Free aggregation SRAM on the emptiest pipeline."""
        return max(
            self.budget_bytes - self.pipeline_usage(p)[0]
            for p in range(self.num_pipelines)
        )

    def _find_pipeline(self, sram_bytes: int, ports: int) -> int | None:
        for p in range(self.num_pipelines):
            used_sram, used_ports = self.pipeline_usage(p)
            if (
                used_sram + sram_bytes <= self.budget_bytes
                and used_ports + ports <= self.pipeline.ports_per_pipeline
            ):
                return p
        return None

    def _place(
        self, num_workers: int, pool_size: int, elements_per_packet: int
    ) -> tuple[int, int]:
        """Validate and place a pool request.

        Returns ``(sram_bytes, pipeline_id)`` or raises
        :class:`AdmissionError` (after counting the rejection).
        """
        report = switchml_resource_report(
            pool_size, elements_per_packet, num_workers, self.pipeline
        )
        if report.stages_used > self.pipeline.num_stages:
            self.rejections += 1
            self._m_rejected.inc()
            raise AdmissionError(
                f"k={elements_per_packet} needs {report.stages_used} stages; "
                f"pipeline has {self.pipeline.num_stages}"
            )
        if num_workers > self.pipeline.ports_per_pipeline:
            self.rejections += 1
            self._m_rejected.inc()
            raise AdmissionError(
                f"{num_workers} workers exceed a pipeline's "
                f"{self.pipeline.ports_per_pipeline} ports; compose "
                "hierarchically instead (SS6)"
            )
        placement = self._find_pipeline(report.total_sram_bytes, num_workers)
        if placement is None:
            self.rejections += 1
            self._m_rejected.inc()
            raise AdmissionError(
                f"no pipeline can host pool={pool_size} slots "
                f"({report.total_sram_bytes} B) + {num_workers} ports; "
                f"{self.num_pipelines} pipelines all full"
            )
        return report.total_sram_bytes, placement

    def admit(
        self,
        num_workers: int,
        pool_size: int,
        elements_per_packet: int = 32,
        check_invariants: bool = False,
    ) -> JobHandle:
        """Admit a job, or raise :class:`AdmissionError`."""
        sram_bytes, placement = self._place(
            num_workers, pool_size, elements_per_packet
        )
        job_id = self._next_job_id
        self._next_job_id += 1
        handle = JobHandle(
            job_id=job_id,
            num_workers=num_workers,
            pool_size=pool_size,
            elements_per_packet=elements_per_packet,
            program=SwitchMLProgram(
                num_workers, pool_size, elements_per_packet,
                check_invariants=check_invariants,
                obs=self._obs, clock=self._clock,
            ),
            sram_bytes=sram_bytes,
            pipeline_id=placement,
            epoch=0,
        )
        self.jobs[job_id] = handle
        self._m_admitted.inc()
        self._g_sram.set(self.allocated_bytes)
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                "pool.admit", self._clock(), cat="pool", actor="allocator",
                job=job_id, slots=pool_size, sram=sram_bytes,
                pipeline=placement,
            )
        return handle

    def renew(
        self,
        job_id: int,
        num_workers: int | None = None,
        pool_size: int | None = None,
        elements_per_packet: int | None = None,
        check_invariants: bool = False,
    ) -> JobHandle:
        """Replace a job's lease with a fresh one under the same job id.

        The new lease carries ``epoch = old.epoch + 1`` and a brand-new
        (zeroed) :class:`SwitchMLProgram` built to serve that epoch --
        this is the reconfiguration primitive failure recovery uses to
        re-admit a job with fewer workers (worker fail-stop) or the same
        membership (switch reboot).  The old lease's resources are
        released first, so a shrink always fits; if placement of the new
        shape fails, the old lease is restored and
        :class:`AdmissionError` propagates (the job keeps running on its
        old configuration).
        """
        old = self.jobs.pop(job_id, None)
        if old is None:
            raise KeyError(f"no admitted job {job_id}")
        n = old.num_workers if num_workers is None else num_workers
        s = old.pool_size if pool_size is None else pool_size
        k = old.elements_per_packet if elements_per_packet is None else elements_per_packet
        try:
            sram_bytes, placement = self._place(n, s, k)
        except AdmissionError:
            self.jobs[job_id] = old
            raise
        epoch = old.epoch + 1
        handle = JobHandle(
            job_id=job_id,
            num_workers=n,
            pool_size=s,
            elements_per_packet=k,
            program=SwitchMLProgram(
                n, s, k, check_invariants=check_invariants, epoch=epoch,
                obs=self._obs, clock=self._clock,
            ),
            sram_bytes=sram_bytes,
            pipeline_id=placement,
            epoch=epoch,
        )
        self.jobs[job_id] = handle
        self._m_renewed.inc()
        self._g_sram.set(self.allocated_bytes)
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                "pool.renew", self._clock(), cat="pool", actor="allocator",
                job=job_id, epoch=epoch, workers=n, slots=s,
            )
        return handle

    def release(self, job_id: int) -> None:
        """Tear a job down, returning its pool to the budget."""
        if job_id not in self.jobs:
            raise KeyError(f"no admitted job {job_id}")
        del self.jobs[job_id]
        self._g_sram.set(self.allocated_bytes)
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                "pool.release", self._clock(), cat="pool", actor="allocator",
                job=job_id,
            )


class MultiJobDataplane:
    """Job-multiplexing chassis program.

    Routes each update packet to its job's program via ``packet.job_id``
    and fans results out to that job's worker ports only -- the isolation
    the paper's tenancy sketch requires.
    """

    def __init__(self, bytes_per_element: int = 4, switch_name: str = "sw"):
        self.bytes_per_element = bytes_per_element
        self.switch_name = switch_name
        # job_id -> (wid -> (port, host name))
        self._members: dict[int, dict[int, tuple[int, str]]] = {}
        self._programs: dict[int, SwitchMLProgram] = {}
        self.unknown_job_drops = 0

    def register_job(
        self, handle: JobHandle, worker_ports: dict[int, tuple[int, str]]
    ) -> None:
        """Attach an admitted job's program and worker placement."""
        if len(worker_ports) != handle.num_workers:
            raise ValueError(
                f"job {handle.job_id} needs {handle.num_workers} workers, "
                f"got {len(worker_ports)} placements"
            )
        self._members[handle.job_id] = dict(worker_ports)
        self._programs[handle.job_id] = handle.program

    def unregister_job(self, job_id: int) -> None:
        self._members.pop(job_id, None)
        self._programs.pop(job_id, None)

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        if frame.corrupted:
            return PortDecision.drop()
        packet = frame.message
        if not isinstance(packet, SwitchMLPacket) or packet.from_switch:
            return PortDecision.drop()
        program = self._programs.get(packet.job_id)
        members = self._members.get(packet.job_id)
        if program is None or members is None:
            self.unknown_job_drops += 1
            return PortDecision.drop()
        decision = program.handle(packet)
        if decision.action is SwitchAction.DROP:
            return PortDecision.drop()
        assert decision.packet is not None
        if decision.action is SwitchAction.UNICAST:
            wid = decision.unicast_wid
            assert wid is not None
            port, name = members[wid]
            out = decision.packet.to_frame(
                self.switch_name, name, self.bytes_per_element
            )
            return PortDecision(deliveries=[(port, out)])
        deliveries = []
        for wid, (port, name) in members.items():
            out = decision.packet.to_frame(
                self.switch_name, name, self.bytes_per_element
            )
            deliveries.append((port, out))
        return PortDecision(deliveries=deliveries)


class _JobTaggingWorker(SwitchMLWorker):
    """A worker whose packets carry its job's id.

    The base worker stamps ``job_id`` into every packet it builds, so
    this is now just a constructor-signature adapter.
    """

    def __init__(self, job_id: int, *args, **kwargs):
        super().__init__(*args, job_id=job_id, **kwargs)


@dataclass
class TenantResult:
    """Outcome of one job's all-reduce on the shared rack."""

    job_id: int
    completed: bool
    worker_stats: list[WorkerStats]
    results: list[np.ndarray | None]

    @property
    def max_tat(self) -> float:
        return max(s.tensor_aggregation_time for s in self.worker_stats)


class MultiTenantRack:
    """A rack whose switch serves several jobs concurrently.

    Each job gets its own set of hosts (as in the paper's dedicated-
    bandwidth assumption) but all share the one programmable switch and
    its pool allocator.
    """

    def __init__(
        self,
        num_hosts: int,
        link: LinkSpec | None = None,
        host: HostSpec | None = None,
        loss_factory: Callable[[], LossModel] = NoLoss,
        allocator: PoolAllocator | None = None,
        seed: int = 0,
    ):
        self.sim = Simulator(seed=seed)
        self.rack: Rack = build_rack(
            self.sim,
            RackSpec(
                num_hosts=num_hosts,
                link=link if link is not None else LinkSpec(),
                host=host if host is not None else HostSpec(),
                loss_factory=loss_factory,
            ),
        )
        self.allocator = allocator if allocator is not None else PoolAllocator()
        self.dataplane = MultiJobDataplane()
        self.rack.switch.load_program(self.dataplane)
        self._used_hosts = 0
        self._jobs: dict[int, tuple[JobHandle, list[_JobTaggingWorker]]] = {}
        self._completed: dict[int, set[int]] = {}

    def add_job(
        self,
        num_workers: int,
        pool_size: int,
        elements_per_packet: int = 32,
        timeout_s: float = 1e-3,
    ) -> int:
        """Admit a job and place its workers on the next free hosts."""
        if self._used_hosts + num_workers > len(self.rack.hosts):
            raise AdmissionError(
                f"rack has {len(self.rack.hosts) - self._used_hosts} free "
                f"hosts; job needs {num_workers}"
            )
        handle = self.allocator.admit(num_workers, pool_size, elements_per_packet)
        placements: dict[int, tuple[int, str]] = {}
        workers: list[_JobTaggingWorker] = []
        self._completed[handle.job_id] = set()
        for wid in range(num_workers):
            host_index = self._used_hosts + wid
            host = self.rack.hosts[host_index]
            worker = _JobTaggingWorker(
                handle.job_id,
                sim=self.sim,
                host=host,
                wid=wid,
                num_workers=num_workers,
                pool_size=pool_size,
                elements_per_packet=elements_per_packet,
                timeout_s=timeout_s,
                on_complete=self._make_on_complete(handle.job_id),
            )
            host.attach_agent(worker)
            placements[wid] = (self.rack.host_port(host_index), host.name)
            workers.append(worker)
        self._used_hosts += num_workers
        self.dataplane.register_job(handle, placements)
        self._jobs[handle.job_id] = (handle, workers)
        return handle.job_id

    def _make_on_complete(self, job_id: int):
        def on_complete(wid: int, time: float) -> None:
            self._completed[job_id].add(wid)

        return on_complete

    def start_job(
        self,
        job_id: int,
        tensors: Sequence[np.ndarray],
        at_time: float | None = None,
    ) -> None:
        """Schedule a job's all-reduce; multiple jobs may overlap."""
        handle, workers = self._jobs[job_id]
        if len(tensors) != handle.num_workers:
            raise ValueError(
                f"job {job_id} needs {handle.num_workers} tensors"
            )
        k = handle.elements_per_packet
        when = self.sim.now if at_time is None else at_time
        self._completed[job_id].clear()
        for worker, tensor in zip(workers, tensors):
            arr = np.asarray(tensor, dtype=np.int64)
            pad = (-len(arr)) % k
            if pad:
                arr = np.concatenate([arr, np.zeros(pad, dtype=np.int64)])
            self.sim.schedule_at(when, worker.start, arr)

    def run(self, deadline_s: float = 60.0) -> None:
        deadline = self.sim.now + deadline_s
        while self.sim.step():
            if self.sim.now > deadline:
                break

    def result(self, job_id: int, original_length: int | None = None) -> TenantResult:
        handle, workers = self._jobs[job_id]
        results = []
        for w in workers:
            if w.result is None:
                results.append(None)
            elif original_length is not None:
                results.append(w.result[:original_length].copy())
            else:
                results.append(w.result.copy())
        return TenantResult(
            job_id=job_id,
            completed=len(self._completed[job_id]) == handle.num_workers,
            worker_stats=[w.stats for w in workers],
            results=results,
        )
