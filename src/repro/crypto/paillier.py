"""A from-scratch Paillier cryptosystem.

Paillier (1999) is additively homomorphic: for public key ``n`` and
ciphertexts ``E(x)``, ``E(y)``, the product ``E(x) * E(y) mod n^2``
decrypts to ``x + y mod n``.  That is precisely the operation SwitchML's
switch would need to aggregate encrypted updates (paper Appendix D).

The implementation is textbook (g = n + 1 simplification):

* keygen: n = p q with p, q prime and gcd(pq, (p-1)(q-1)) = 1;
  lambda = lcm(p-1, q-1); mu = lambda^{-1} mod n.
* encrypt(m): c = (n+1)^m * r^n mod n^2  (random r in Z*_n), and
  (n+1)^m mod n^2 = 1 + m n, so encryption is one modular exponentiation.
* decrypt(c): m = L(c^lambda mod n^2) * mu mod n, with L(u) = (u-1)/n.

Primes come from a deterministic Miller-Rabin search seeded by the
caller, so tests are reproducible.  Key sizes here are small (default
256-bit n) -- enough to demonstrate the protocol; this is a protocol
artifact, not a hardened library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PaillierKeyPair",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "generate_keypair",
    "is_probable_prime",
]

# Deterministic Miller-Rabin witnesses: sufficient for n < 3.3 * 10^24,
# far beyond the prime sizes used here for the probabilistic rounds'
# base set; additional random rounds cover larger primes.
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(candidate: int, rng: np.random.Generator, rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False
    # write candidate - 1 = d * 2^s with d odd
    d = candidate - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1

    def witness(a: int) -> bool:
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            return False
        for _ in range(s - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                return False
        return True  # a witnesses compositeness

    for a in _SMALL_PRIMES:
        if a >= candidate - 1:
            continue
        if witness(a):
            return False
    for _ in range(rounds):
        # draw a witness in [2, candidate - 2] from 30-bit words (the
        # candidate can exceed int64, so compose the draw manually)
        span = candidate - 3
        draw = 0
        for _ in range((candidate.bit_length() // 30) + 1):
            draw = (draw << 30) | int(rng.integers(0, 2**30))
        a = 2 + (draw % span)
        if witness(a):
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    """A random prime with the top bit set (exactly ``bits`` bits)."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        # assemble a random odd integer with the top bit forced
        words = [int(rng.integers(0, 2**30)) for _ in range((bits // 30) + 1)]
        candidate = 0
        for w in words:
            candidate = (candidate << 30) | w
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """The public half: everything the workers and the switch need."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def half_n(self) -> int:
        """Signed-value threshold: plaintexts above this decode negative."""
        return self.n // 2

    def encode_signed(self, value: int) -> int:
        """Map a signed integer into Z_n (two's-complement style)."""
        if abs(value) >= self.half_n:
            raise ValueError(f"value {value} exceeds the signed plaintext range")
        return value % self.n

    def decode_signed(self, plaintext: int) -> int:
        """Inverse of :meth:`encode_signed`."""
        return plaintext - self.n if plaintext > self.half_n else plaintext

    def encrypt(self, message: int, rng: np.random.Generator) -> int:
        """Encrypt a (non-negative, already encoded) plaintext."""
        if not 0 <= message < self.n:
            raise ValueError("plaintext out of range; encode_signed first")
        n2 = self.n_squared
        while True:
            r = int(rng.integers(2, 2**62)) % self.n
            if r > 1 and math.gcd(r, self.n) == 1:
                break
        # (n+1)^m mod n^2 == 1 + m n  (binomial expansion)
        gm = (1 + message * self.n) % n2
        return (gm * pow(r, self.n, n2)) % n2

    def homomorphic_add(self, c1: int, c2: int) -> int:
        """The switch's operation: E(x) * E(y) mod n^2 = E(x + y)."""
        return (c1 * c2) % self.n_squared

    def identity_ciphertext(self) -> int:
        """A deterministic encryption of zero (slot reset value).

        Uses r = 1: decrypts to 0; multiplying by it is a no-op.
        """
        return 1


@dataclass(frozen=True)
class PaillierPrivateKey:
    """The private half, held only by the workers' key authority."""

    lam: int  # lcm(p-1, q-1)
    mu: int  # lam^{-1} mod n
    public: PaillierPublicKey

    def decrypt(self, ciphertext: int) -> int:
        n = self.public.n
        n2 = self.public.n_squared
        if not 0 < ciphertext < n2:
            raise ValueError("ciphertext out of range")
        u = pow(ciphertext, self.lam, n2)
        l_of_u = (u - 1) // n
        return (l_of_u * self.mu) % n

    def decrypt_signed(self, ciphertext: int) -> int:
        return self.public.decode_signed(self.decrypt(ciphertext))


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    private: PaillierPrivateKey


def generate_keypair(bits: int = 256, seed: int = 0) -> PaillierKeyPair:
    """Generate a keypair with an ``n`` of roughly ``bits`` bits."""
    rng = np.random.default_rng(seed)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(half, rng)
        if p == q:
            continue
        n = p * q
        lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
        if math.gcd(n, (p - 1) * (q - 1)) != 1:
            continue
        try:
            mu = pow(lam, -1, n)
        except ValueError:  # pragma: no cover - gcd check above prevents
            continue
        public = PaillierPublicKey(n=n)
        private = PaillierPrivateKey(lam=lam, mu=mu, public=public)
        return PaillierKeyPair(public=public, private=private)
