"""Encrypted in-network aggregation (Appendix D, end to end).

Workers quantize their gradients (the usual SwitchML fixed-point path),
encode them as signed Paillier plaintexts, and encrypt element by
element.  The switch's aggregation pool holds ciphertexts, and its
per-contribution operation is a modular multiplication -- decrypting the
slot after ``n`` contributions yields exactly the integer sum, which the
workers dequantize as usual.

A cost model rides along: ciphertexts are ~2x the key size *per
element*, so wire expansion and the bignum arithmetic quantify why the
paper stops at "likely costly" for dataplane crypto while noting the
aggregation operation itself fits the homomorphic mold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.paillier import PaillierKeyPair, PaillierPublicKey
from repro.quant.fixedpoint import quantize

__all__ = [
    "EncryptedAggregationPool",
    "EncryptedAllReduceResult",
    "decrypt_aggregate",
    "encrypt_update",
    "encrypted_allreduce",
    "wire_expansion_factor",
]


def encrypt_update(
    update: np.ndarray,
    public: PaillierPublicKey,
    scaling_factor: float,
    rng: np.random.Generator,
) -> list[int]:
    """Quantize and encrypt one worker's gradient vector."""
    quantized = quantize(update, scaling_factor)
    return [
        public.encrypt(public.encode_signed(int(v)), rng) for v in quantized
    ]


def decrypt_aggregate(
    ciphertexts: list[int],
    keys: PaillierKeyPair,
    scaling_factor: float,
) -> np.ndarray:
    """Decrypt the aggregated ciphertext vector and dequantize."""
    values = [keys.private.decrypt_signed(c) for c in ciphertexts]
    return np.asarray(values, dtype=np.float64) / scaling_factor


class EncryptedAggregationPool:
    """Algorithm 1 over ciphertexts.

    State: ``pool[s][k]`` ciphertext cells and per-slot counters.  Per
    contribution, every cell is multiplied by the incoming ciphertext
    modulo n^2 -- the switch never holds a key and never sees plaintext.
    """

    def __init__(
        self,
        public: PaillierPublicKey,
        num_workers: int,
        pool_size: int,
        elements_per_packet: int,
    ):
        if num_workers < 1 or pool_size < 1 or elements_per_packet < 1:
            raise ValueError("workers, pool size, and k must be positive")
        self.public = public
        self.n = num_workers
        self.s = pool_size
        self.k = elements_per_packet
        identity = public.identity_ciphertext()
        self._pool: list[list[int]] = [
            [identity] * elements_per_packet for _ in range(pool_size)
        ]
        self._count = [0] * pool_size
        self.modular_multiplications = 0

    def contribute(self, idx: int, ciphertexts: list[int]) -> list[int] | None:
        """Fold one worker's chunk into slot ``idx``.

        Returns the aggregated ciphertext vector when the slot completes
        (the "multicast"), else None.
        """
        if not 0 <= idx < self.s:
            raise ValueError(f"slot {idx} out of range")
        if len(ciphertexts) != self.k:
            raise ValueError(f"chunk must have {self.k} ciphertexts")
        slot = self._pool[idx]
        for i, c in enumerate(ciphertexts):
            slot[i] = self.public.homomorphic_add(slot[i], c)
            self.modular_multiplications += 1
        self._count[idx] += 1
        if self._count[idx] == self.n:
            result = list(slot)
            identity = self.public.identity_ciphertext()
            self._pool[idx] = [identity] * self.k
            self._count[idx] = 0
            return result
        return None

    @property
    def state_bytes(self) -> int:
        """Ciphertext state footprint: 2 x keybits per cell -- the SRAM
        blow-up that makes dataplane crypto expensive."""
        cell_bytes = (self.public.n_squared.bit_length() + 7) // 8
        return self.s * self.k * cell_bytes


def wire_expansion_factor(public: PaillierPublicKey) -> float:
    """Bytes-on-wire multiplier vs 4-byte plaintext elements."""
    cipher_bytes = (public.n_squared.bit_length() + 7) // 8
    return cipher_bytes / 4.0


@dataclass
class EncryptedAllReduceResult:
    """Outcome of an encrypted all-reduce round."""

    aggregate: np.ndarray
    modular_multiplications: int
    ciphertext_bytes_per_element: int
    wire_expansion: float


def encrypted_allreduce(
    updates: list[np.ndarray],
    keys: PaillierKeyPair,
    scaling_factor: float,
    elements_per_packet: int = 8,
    seed: int = 0,
) -> EncryptedAllReduceResult:
    """Run a full encrypted aggregation round over per-worker updates.

    Chunks each worker's encrypted vector through the ciphertext pool
    exactly as the plaintext protocol would, then decrypts the collected
    aggregate once at the edge.
    """
    if not updates:
        raise ValueError("need at least one worker update")
    sizes = {len(u) for u in updates}
    if len(sizes) != 1:
        raise ValueError("all workers must contribute equal-length updates")
    size = sizes.pop()
    k = elements_per_packet
    pad = (-size) % k
    rng = np.random.default_rng(seed)
    public = keys.public

    encrypted = []
    for update in updates:
        padded = np.concatenate([np.asarray(update, dtype=np.float64),
                                 np.zeros(pad)])
        encrypted.append(encrypt_update(padded, public, scaling_factor, rng))

    n = len(updates)
    chunks = (size + pad) // k
    pool = EncryptedAggregationPool(
        public, n, pool_size=min(4, chunks), elements_per_packet=k
    )
    collected: list[int] = [0] * (size + pad)
    for chunk_index in range(chunks):
        slot = chunk_index % pool.s
        lo = chunk_index * k
        result = None
        for worker in range(n):
            result = pool.contribute(slot, encrypted[worker][lo : lo + k])
        assert result is not None, "slot must complete after n contributions"
        collected[lo : lo + k] = result

    aggregate = decrypt_aggregate(collected, keys, scaling_factor)[:size]
    cipher_bytes = (public.n_squared.bit_length() + 7) // 8
    return EncryptedAllReduceResult(
        aggregate=aggregate,
        modular_multiplications=pool.modular_multiplications,
        ciphertext_bytes_per_element=cipher_bytes,
        wire_expansion=wire_expansion_factor(public),
    )
