"""Encrypted gradient aggregation (paper Appendix D).

The paper's closing observation: arbitrary computation over encrypted
data is beyond a switch, but SwitchML's aggregation is *just integer
addition*, and "the appealing property of several partially homomorphic
cryptosystems (e.g., Paillier) is that the relation
``E(x) * E(y) = E(x + y)`` holds" -- so workers could encrypt their
quantized updates and the switch could aggregate ciphertexts by modular
multiplication, never seeing a gradient in the clear.

This package builds that design end to end:

* :mod:`repro.crypto.paillier` -- a from-scratch Paillier cryptosystem
  (keygen with Miller-Rabin primes, encryption, decryption, homomorphic
  addition, signed-value encoding);
* :mod:`repro.crypto.encrypted_aggregation` -- the encrypted analogue of
  Algorithm 1: a switch program whose "registers" hold ciphertexts and
  whose per-packet operation is ``c_slot <- c_slot * c_in mod n^2``, plus
  the worker-side encrypt/decrypt pipeline and a cost model quantifying
  why the paper calls dataplane crypto "likely costly".
"""

from repro.crypto.paillier import PaillierKeyPair, PaillierPublicKey, generate_keypair
from repro.crypto.encrypted_aggregation import (
    EncryptedAggregationPool,
    decrypt_aggregate,
    encrypt_update,
    encrypted_allreduce,
)

__all__ = [
    "EncryptedAggregationPool",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "decrypt_aggregate",
    "encrypt_update",
    "encrypted_allreduce",
    "generate_keypair",
]
