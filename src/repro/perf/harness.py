"""The benchmark harness: run workload suites, emit BENCH.json,
compare runs against a tracked baseline, and gate regressions.

BENCH.json schema (``"schema": "repro-bench/1"``)::

    {
      "schema": "repro-bench/1",
      "label": "<free-form run label>",
      "scale": 1.0,
      "repeats": 3,
      "workloads": {
        "<name>": {"wall_s": ..., "events": ..., "events_per_s": ...,
                    "packets": ..., "packets_per_s": ..., "extra": {...}},
        ...
      },
      "baseline": { "label": ..., "workloads": {...} },   # optional
      "deltas":   { "<name>": {"events_per_s_ratio": ...,
                                "wall_ratio": ...} }       # vs baseline
    }

``repeats`` runs each workload N times and keeps the *best* wall (least
interference); events/sec is the headline metric because it is
approximately invariant under ``scale``, which lets a small CI smoke
run be compared against a full-scale committed baseline.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any

from repro.perf.workloads import WORKLOADS, run_workload

__all__ = [
    "SCHEMA",
    "SWEEP_SCHEMA",
    "run_suite",
    "attach_baseline",
    "compare",
    "check_regression",
    "profile_workload",
    "write_bench",
    "load_bench",
    "load_sweep_summary",
    "load_trend",
    "trend_table",
    "format_trend",
]

SCHEMA = "repro-bench/1"

#: the sweep orchestrator's summary document (same envelope as
#: BENCH.json -- label + per-"workload" aggregates -- plus per-task
#: records; produced by :func:`repro.sweep.runner.sweep_summary` and
#: written with :func:`write_bench`)
SWEEP_SCHEMA = "repro-sweep/1"


def run_suite(
    names: list[str] | None = None,
    scale: float = 1.0,
    repeats: int = 3,
    label: str = "",
) -> dict[str, Any]:
    """Run the named workloads (all of them by default) ``repeats``
    times each, keeping the fastest run, and return a BENCH document."""
    if names is None:
        names = list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workloads: {unknown} (have {sorted(WORKLOADS)})")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results: dict[str, Any] = {}
    for name in names:
        best: dict[str, Any] | None = None
        for _ in range(repeats):
            m = run_workload(name, scale=scale)
            if best is None or m["wall_s"] < best["wall_s"]:
                best = m
        results[name] = best
    return {
        "schema": SCHEMA,
        "label": label,
        "python": platform.python_version(),
        "platform": sys.platform,
        "scale": scale,
        "repeats": repeats,
        "workloads": results,
    }


def profile_workload(name: str, scale: float = 1.0, top: int = 25) -> str:
    """Run one workload under :mod:`cProfile` and return a formatted
    report: the top ``top`` functions by total (self) time, then by
    cumulative time.

    Kept separate from the timed repeats -- profiling overhead would
    pollute the wall numbers -- so ``repro bench --profile`` times
    first and profiles after.
    """
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        run_workload(name, scale=scale)
    finally:
        prof.disable()
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    buf.write(f"== {name} (scale={scale}) -- top {top} by self time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    buf.write(f"== {name} (scale={scale}) -- top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def compare(current: dict[str, Any], baseline: dict[str, Any]) -> dict[str, Any]:
    """Per-workload deltas of ``current`` vs ``baseline`` (both BENCH
    documents).  Only workloads present in both are compared.

    ``events_per_s_ratio`` > 1 means the current run is faster.
    """
    deltas: dict[str, Any] = {}
    base_wl = baseline.get("workloads", {})
    for name, cur in current.get("workloads", {}).items():
        base = base_wl.get(name)
        if base is None:
            continue
        base_rate = base.get("events_per_s", 0.0)
        cur_rate = cur.get("events_per_s", 0.0)
        entry: dict[str, Any] = {
            "events_per_s_ratio": (cur_rate / base_rate) if base_rate else None,
        }
        base_wall = base.get("wall_s", 0.0)
        entry["wall_ratio"] = (cur["wall_s"] / base_wall) if base_wall else None
        deltas[name] = entry
    return deltas


def attach_baseline(current: dict[str, Any], baseline: dict[str, Any]) -> None:
    """Embed ``baseline`` and the computed deltas into ``current``."""
    current["baseline"] = {
        "label": baseline.get("label", ""),
        "workloads": baseline.get("workloads", {}),
    }
    current["deltas"] = compare(current, baseline)


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    max_regression: float = 0.20,
) -> list[str]:
    """Return a failure message per workload whose events/sec dropped
    more than ``max_regression`` (fraction) below the baseline.  An
    empty list means the gate passes."""
    failures: list[str] = []
    base_wl = baseline.get("workloads", {})
    cur_wl = current.get("workloads", {})
    for name, delta in compare(current, baseline).items():
        ratio = delta.get("events_per_s_ratio")
        if ratio is None:
            continue
        if ratio < 1.0 - max_regression:
            base_rate = base_wl.get(name, {}).get("events_per_s", 0.0)
            cur_rate = cur_wl.get(name, {}).get("events_per_s", 0.0)
            failures.append(
                f"{name}: events/sec regressed to {ratio:.2f}x of baseline "
                f"(baseline {base_rate:,.0f} ev/s, measured {cur_rate:,.0f} "
                f"ev/s; allowed >= {1.0 - max_regression:.2f}x)"
            )
    return failures


def write_bench(doc: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")


def _load_schema_doc(path: str | Path, expected: str) -> dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != expected:
        raise ValueError(
            f"{path}: unsupported schema {doc.get('schema')!r} "
            f"(expected {expected!r})"
        )
    return doc


def load_bench(path: str | Path) -> dict[str, Any]:
    return _load_schema_doc(path, SCHEMA)


def load_sweep_summary(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a ``repro sweep`` summary document."""
    return _load_schema_doc(path, SWEEP_SCHEMA)


TREND_SCHEMA = "repro-bench-trend/1"


def load_trend(directory: str | Path = ".") -> list[tuple[str, dict[str, Any]]]:
    """All committed ``BENCH_*.json`` baselines in name order.

    The committed baselines are numbered (``BENCH_0003.json`` ...), so
    lexicographic name order is PR order.  Files matching the glob but
    carrying a different schema (sweep summaries) are skipped.
    """
    docs: list[tuple[str, dict[str, Any]]] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            docs.append((path.name, load_bench(path)))
        except (ValueError, json.JSONDecodeError):
            continue
    return docs


def trend_table(docs: list[tuple[str, dict[str, Any]]]) -> dict[str, Any]:
    """Per-workload trajectory across a sequence of BENCH documents.

    Returns a ``repro-bench-trend/1`` document: the baseline names and
    labels in order, and for each workload (ordered by first
    appearance) the per-baseline ``{wall_s, events, events_per_s}``
    triple -- ``None`` where a baseline predates the workload.
    """
    order: list[str] = []
    for _, doc in docs:
        for name in doc.get("workloads", {}):
            if name not in order:
                order.append(name)
    workloads: dict[str, list[dict[str, Any] | None]] = {}
    for name in order:
        row: list[dict[str, Any] | None] = []
        for _, doc in docs:
            m = doc.get("workloads", {}).get(name)
            row.append(
                None if m is None else {
                    "wall_s": m["wall_s"],
                    "events": m["events"],
                    "events_per_s": m["events_per_s"],
                }
            )
        workloads[name] = row
    return {
        "schema": TREND_SCHEMA,
        "baselines": [
            {"file": fname, "label": doc.get("label", "")}
            for fname, doc in docs
        ],
        "workloads": workloads,
    }


def format_trend(trend: dict[str, Any]) -> str:
    """Render a trend document as aligned text tables.

    One table per metric (events/sec, then wall seconds); the last
    column is the newest-over-oldest ratio for the workload, computed
    between its first and last appearances.
    """
    baselines = trend["baselines"]
    if not baselines:
        return "no BENCH_*.json baselines found\n"
    cols = [b["file"].removesuffix(".json").removeprefix("BENCH_")
            for b in baselines]
    lines = []
    for i, b in enumerate(baselines):
        lines.append(f"  {cols[i]:<6} {b['file']}: {b['label']}")
    name_w = max(len("workload"),
                 *(len(n) for n in trend["workloads"])) if trend["workloads"] else 8

    def table(title: str, cell, ratio) -> None:
        lines.append("")
        lines.append(title)
        lines.append(
            f"{'workload':<{name_w}} "
            + " ".join(f"{c:>10}" for c in cols)
            + f" {'trend':>8}"
        )
        for name, row in trend["workloads"].items():
            cells = [("         -" if m is None else f"{cell(m):>10}")
                     for m in row]
            present = [m for m in row if m is not None]
            if len(present) >= 2:
                try:
                    tail = f"{ratio(present[0], present[-1]):>7.2f}x"
                except ZeroDivisionError:
                    tail = f"{'-':>8}"
            else:
                tail = f"{'-':>8}"
            lines.append(f"{name:<{name_w}} " + " ".join(cells) + f" {tail}")

    table("events/sec (best of repeats; scale-invariant headline)",
          lambda m: f"{m['events_per_s']:,.0f}",
          lambda first, last: last["events_per_s"] / first["events_per_s"])
    table("wall seconds (speedup = oldest wall / newest wall)",
          lambda m: f"{m['wall_s']:.3f}",
          lambda first, last: first["wall_s"] / last["wall_s"])
    return "\n".join(lines) + "\n"
