"""Benchmark workloads for the performance harness.

Each workload is a plain function taking a ``scale`` factor and
returning a flat measurement dict with at least::

    wall_s          total wall-clock seconds for the measured region
    events          simulation events fired
    events_per_s    events / wall_s
    packets         protocol packets transmitted (0 for engine-only)
    packets_per_s   packets / wall_s

plus workload-specific ``extra`` entries (retransmission counts, TAT,
determinism fingerprints).  ``scale`` shrinks or grows the work
proportionally -- CI smoke runs use ``scale=0.1``; rate metrics
(events/sec) are approximately scale-invariant, absolute walls are not.

The flagship workload, :func:`fig4_lossy`, is the paper's Figure 4
setting (packet loss during an all-reduce): 8 workers, pool of 128
slots, 32 elements per packet, 1 % Bernoulli loss, phantom tensors so
the measurement isolates protocol + engine cost rather than numpy.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.net.loss import BernoulliLoss, NoLoss
from repro.sim.engine import Simulator

__all__ = ["WORKLOADS", "run_workload"]

#: base element count for the fig4 workloads at scale=1.0 (8192 packets
#: of 32 elements -- the event count this produces, 371 090 with loss,
#: is the fingerprint tracked in BENCH_0003.json)
_FIG4_ELEMENTS = 32 * 8192


def _fig4_config(
    loss: float,
    scheduler: str = "wheel",
    granularity: str = "packet",
    burst_epsilon: float = 0.0,
    train_egress: bool = False,
) -> SwitchMLConfig:
    factory = (lambda: BernoulliLoss(loss)) if loss > 0.0 else NoLoss
    return SwitchMLConfig(
        num_workers=8,
        pool_size=128,
        elements_per_packet=32,
        seed=7,
        loss_factory=factory,
        scheduler=scheduler,
        granularity=granularity,
        burst_epsilon=burst_epsilon,
        train_egress=train_egress,
    )


def _run_job(cfg: SwitchMLConfig, num_elements: int) -> dict[str, Any]:
    job = SwitchMLJob(cfg)
    t0 = time.perf_counter()
    res = job.all_reduce(num_elements=num_elements, verify=False)
    wall = time.perf_counter() - t0
    events = job.sim.events_processed
    packets = sum(s.packets_sent for s in res.worker_stats)
    extra: dict[str, Any] = {
        "completed": res.completed,
        "retransmissions": res.retransmissions,
        "max_tat_s": max(
            s.tensor_aggregation_time for s in res.worker_stats
        ),
    }
    program = getattr(job, "program", None)
    if program is not None and hasattr(program, "backend"):
        extra["backend"] = program.backend
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "packets": packets,
        "packets_per_s": packets / wall if wall > 0 else 0.0,
        "extra": extra,
    }


def fig4_lossy(scale: float = 1.0) -> dict[str, Any]:
    """Figure 4 all-reduce under 1 % loss (phantom tensors)."""
    return _run_job(_fig4_config(loss=0.01), max(256, int(_FIG4_ELEMENTS * scale)))


def fig4_clean(scale: float = 1.0) -> dict[str, Any]:
    """The same all-reduce on loss-free links (timer arm/cancel only)."""
    return _run_job(_fig4_config(loss=0.0), max(256, int(_FIG4_ELEMENTS * scale)))


def fig4_lossy_burst(scale: float = 1.0) -> dict[str, Any]:
    """:func:`fig4_lossy` at burst granularity.

    Same protocol run (identical results, retransmission counts, and
    TATs -- the equivalence tests assert it), but simultaneous arrivals
    drain through one engine event and the switch's vectorized batch
    handler.  ``events`` is smaller than packet mode's by construction,
    so events/sec is NOT comparable across granularities: compare
    ``wall_s`` and ``packets_per_s`` instead (the fingerprint extras
    stay comparable).
    """
    return _run_job(
        _fig4_config(loss=0.01, granularity="burst"),
        max(256, int(_FIG4_ELEMENTS * scale)),
    )


def fig4_clean_burst(scale: float = 1.0) -> dict[str, Any]:
    """:func:`fig4_clean` at burst granularity (see fig4_lossy_burst)."""
    return _run_job(
        _fig4_config(loss=0.0, granularity="burst"),
        max(256, int(_FIG4_ELEMENTS * scale)),
    )


def fig4_lossy_burst_eps(scale: float = 1.0) -> dict[str, Any]:
    """:func:`fig4_lossy_burst` with a 20 us epsilon coalescing window.

    The window lets burst mode merge near-simultaneous arrivals (not
    just exact ties) into one drain, so the vectorized batch bodies see
    batches big enough to pay off.  eps=20 us is several RTTs but far
    below the 1 ms retransmission timeout: the run is
    protocol-equivalent, NOT schedule-identical -- results and recovery
    behavior match, but per-packet timings shift by up to eps per hop,
    which shows up as an additive ``max_tat_s`` inflation of roughly
    rounds x hops x eps (~3x here; see docs/PERFORMANCE.md).  Compare
    ``wall_s``/``packets_per_s`` against fig4_lossy for the speedup.
    """
    return _run_job(
        _fig4_config(loss=0.01, granularity="burst", burst_epsilon=2e-5),
        max(256, int(_FIG4_ELEMENTS * scale)),
    )


def fig4_lossy_train(scale: float = 1.0) -> dict[str, Any]:
    """:func:`fig4_lossy_burst_eps` with frame-train egress on top.

    The full batched TX path: worker chunk groups leave through one
    :meth:`~repro.net.host.Host.send_train` call (one dispatch cursor
    instead of one engine event per frame), and the switch fans each
    drain out through per-port batched send bodies.  At eps=0 the train
    path is bit-identical to per-frame sends (the equivalence tests pin
    it); at this workload's 20 us window it inherits burst_eps's
    protocol-equivalent-not-schedule-identical caveat.  This is the
    headline egress workload: compare ``wall_s`` against fig4_lossy.
    """
    return _run_job(
        _fig4_config(
            loss=0.01, granularity="burst", burst_epsilon=2e-5, train_egress=True
        ),
        max(256, int(_FIG4_ELEMENTS * scale)),
    )


def fig4_telemetry(scale: float = 1.0) -> dict[str, Any]:
    """:func:`fig4_clean` with the in-band telemetry hub stamping every
    hop (metrics and tracing off, so the delta vs ``fig4_clean`` is the
    stamping + interval-series cost in isolation).

    The *disabled* path -- no hub installed -- is what the <5% budget in
    ``benchmarks/test_telemetry_overhead.py`` guards; this workload
    tracks the opt-in price so regressions in the enabled path are
    visible in the bench history too.
    """
    from repro.obs import Observability

    cfg = _fig4_config(loss=0.0)
    cfg.obs = Observability(enabled=False, telemetry=True)
    m = _run_job(cfg, max(256, int(_FIG4_ELEMENTS * scale)))
    collector = cfg.obs.telemetry.collector
    m["extra"]["frames_drained"] = collector.frames_drained
    m["extra"]["hops_drained"] = collector.hops_drained
    return m


def engine_churn(scale: float = 1.0) -> dict[str, Any]:
    """Engine-only replay of the fig4 scheduling mix.

    1024 self-sustaining event chains (the slots in flight), one
    retransmission-style timer armed per hop, ~7/8 of timers cancelled
    by the next hop and the rest firing -- with near-empty callbacks,
    so events/sec measures the scheduler itself (insert, pop, cancel,
    wheel pour) rather than protocol bodies.
    """
    chains = 1024
    hops = max(8, int(320 * scale))
    hop_s = 1e-6
    timer_s = 50e-6
    slow_s = timer_s + 10e-6

    sim = Simulator(seed=1)
    timers: list[Any] = [None] * chains
    schedule_call = sim.schedule_call
    schedule_at = sim.schedule_at

    def timeout(c: int) -> None:
        timers[c] = None

    def hop(c: int, h: int) -> None:
        t = timers[c]
        if t is not None:
            t.cancel()
        if h:
            timers[c] = schedule_at(sim.now + timer_s, timeout, c)
            schedule_call(hop_s if h & 7 else slow_s, hop, c, h - 1)

    for c in range(chains):
        schedule_at(c * 1e-9, hop, c, hops)

    t0 = time.perf_counter()
    sim.run_deadline(float("inf"))
    wall = time.perf_counter() - t0
    events = sim.events_processed
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "packets": 0,
        "packets_per_s": 0.0,
        "extra": {"chains": chains, "hops": hops},
    }


def fabric_2tier(scale: float = 1.0) -> dict[str, Any]:
    """A 2-tier Clos all-reduce under the fabric controller.

    4 leaves x 8 workers on clean links, phantom tensors: the measured
    region covers the two-tier aggregation path (leaf rack pools, the
    spine pool, controller heartbeat traffic) end to end.  Packets
    counted are worker transmissions, as in the flat workloads; leaf
    partials and beacons show up only as engine events.
    """
    from repro.net.fabric import FabricConfig, FabricJob

    job = FabricJob(
        FabricConfig(
            num_leaves=4,
            num_spines=2,
            workers_per_leaf=8,
            pool_size=64,
            elements_per_packet=32,
            seed=7,
        )
    )
    elements = max(256, int(_FIG4_ELEMENTS * scale) // 4)
    t0 = time.perf_counter()
    res = job.all_reduce(num_elements=elements, deadline_s=30.0)
    wall = time.perf_counter() - t0
    events = job.sim.events_processed
    packets = sum(s.packets_sent for s in res.worker_stats)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall > 0 else 0.0,
        "packets": packets,
        "packets_per_s": packets / wall if wall > 0 else 0.0,
        "extra": {
            "completed": res.completed,
            "reroutes": len(res.reroutes),
            "retransmissions": res.retransmissions,
            "max_tat_s": res.max_tat,
        },
    }


def core_scaling(scale: float = 1.0) -> dict[str, Any]:
    """Worker-count sweep (2/4/8) on clean links, aggregated.

    Tracks how harness throughput holds up as the rack grows; the
    per-count rates land in ``extra.sweep``.
    """
    elements = max(256, int(_FIG4_ELEMENTS * scale) // 4)
    sweep: dict[str, dict[str, float]] = {}
    total_wall = 0.0
    total_events = 0
    total_packets = 0
    for n in (2, 4, 8):
        cfg = SwitchMLConfig(
            num_workers=n,
            pool_size=128,
            elements_per_packet=32,
            seed=7,
            scheduler="wheel",
        )
        m = _run_job(cfg, elements)
        sweep[str(n)] = {
            "wall_s": m["wall_s"],
            "events_per_s": m["events_per_s"],
            "packets_per_s": m["packets_per_s"],
        }
        total_wall += m["wall_s"]
        total_events += m["events"]
        total_packets += m["packets"]
    return {
        "wall_s": total_wall,
        "events": total_events,
        "events_per_s": total_events / total_wall if total_wall > 0 else 0.0,
        "packets": total_packets,
        "packets_per_s": total_packets / total_wall if total_wall > 0 else 0.0,
        "extra": {"sweep": sweep},
    }


WORKLOADS: dict[str, Callable[[float], dict[str, Any]]] = {
    "fig4_lossy": fig4_lossy,
    "fig4_clean": fig4_clean,
    "fig4_lossy_burst": fig4_lossy_burst,
    "fig4_clean_burst": fig4_clean_burst,
    "fig4_lossy_burst_eps": fig4_lossy_burst_eps,
    "fig4_lossy_train": fig4_lossy_train,
    "fig4_telemetry": fig4_telemetry,
    "engine_churn": engine_churn,
    "core_scaling": core_scaling,
    "fabric_2tier": fabric_2tier,
}


def run_workload(name: str, scale: float = 1.0) -> dict[str, Any]:
    """Run one named workload once; raises KeyError for unknown names."""
    return WORKLOADS[name](scale)
