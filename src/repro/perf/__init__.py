"""Performance measurement: benchmark workloads, the BENCH.json
harness, and regression gating against a tracked baseline.

See ``docs/PERFORMANCE.md`` for the methodology and the history of
tracked baselines (``BENCH_*.json`` at the repo root).
"""

from repro.perf.harness import (
    SCHEMA,
    attach_baseline,
    check_regression,
    compare,
    format_trend,
    load_bench,
    load_trend,
    profile_workload,
    run_suite,
    trend_table,
    write_bench,
)
from repro.perf.workloads import WORKLOADS, run_workload

__all__ = [
    "SCHEMA",
    "WORKLOADS",
    "attach_baseline",
    "check_regression",
    "compare",
    "format_trend",
    "load_bench",
    "load_trend",
    "profile_workload",
    "run_suite",
    "run_workload",
    "trend_table",
    "write_bench",
]
