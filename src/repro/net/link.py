"""Point-to-point links with serialization delay, propagation delay,
FIFO queueing, optional buffer caps, and loss injection.

The model is standard store-and-forward: a frame of ``L`` bytes on a link
of rate ``R`` bps occupies the transmitter for ``8L/R`` seconds starting
when the transmitter frees up, then arrives ``propagation`` seconds after
its last bit leaves.  Injected losses (paper SS5.5) consume transmitter
time -- the bits go out, they just never arrive -- which matches how loss
behaves on a real wire and matters for TAT-inflation measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Frame
from repro.sim.engine import Simulator

__all__ = ["Link", "LinkSpec", "LinkStats"]


@dataclass
class LinkSpec:
    """Parameters for one direction of a cable.

    ``propagation_s`` defaults to 500 ns -- roughly 100 m of fibre, a rack
    in-row run.  ``queue_bytes`` caps the transmitter backlog; ``None``
    means infinite (the paper's rack is dedicated and uncongested, SS3.2
    footnote).

    ``jitter_s`` adds a uniform random extra delay per frame, which can
    reorder deliveries -- the paper claims the protocol "is not
    influenced by packet reorderings" because every packet carries its
    pool index and offset (SS3.4); the reordering tests turn this on.

    ``corruption_probability`` flips the delivered frame's ``corrupted``
    flag (a bit-flip survives the wire but fails the receiver's
    checksum): "a simple checksum can be used to detect corruption and
    discard corrupted packets" (SS3.4).  Receivers treat a corrupt frame
    as a loss; the timeout machinery recovers it.
    """

    rate_gbps: float = 10.0
    propagation_s: float = 500e-9
    queue_bytes: int | None = None
    jitter_s: float = 0.0
    corruption_probability: float = 0.0

    @property
    def rate_bps(self) -> float:
        return self.rate_gbps * 1e9

    def serialization_s(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / self.rate_bps


@dataclass
class LinkStats:
    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    frames_queue_dropped: int = 0
    frames_corrupted: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    _extra: dict = field(default_factory=dict)

    def conservation_holds(self) -> bool:
        """DESIGN.md invariant: every serialized frame was either
        delivered or lost (queue drops never reached the transmitter and
        are accounted separately)."""
        return self.frames_sent == self.frames_delivered + self.frames_lost


class Link:
    """One unidirectional link.

    Parameters
    ----------
    sim:
        Simulation engine.
    spec:
        Rate / delay / buffer parameters.
    name:
        Identifies the link in stats and RNG substreams.
    deliver:
        Callback invoked as ``deliver(frame)`` at arrival time.  Set (or
        replaced) later via :meth:`connect` by topology builders.
    loss:
        Loss model; defaults to :class:`NoLoss`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str,
        deliver: Callable[[Frame], Any] | None = None,
        loss: LossModel | None = None,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._deliver = deliver
        self.loss = loss if loss is not None else NoLoss()
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._rng = sim.rng(f"link:{name}")
        #: optional hook called with (frame, "sent"|"lost"|"delivered", time)
        self.observer: Callable[[Frame, str, float], Any] | None = None

    def connect(self, deliver: Callable[[Frame], Any]) -> None:
        """Set the receiver callback."""
        self._deliver = deliver

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Enqueue ``frame`` for transmission.

        Returns False if the frame was tail-dropped at the queue (only
        possible with a finite ``queue_bytes``).
        """
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")

        backlog_s = max(0.0, self._busy_until - self.sim.now)
        if self.spec.queue_bytes is not None:
            backlog_bytes = backlog_s * self.spec.rate_bps / 8.0
            if backlog_bytes + frame.wire_bytes > self.spec.queue_bytes:
                self.stats.frames_queue_dropped += 1
                if self.observer is not None:
                    self.observer(frame, "queue_dropped", self.sim.now)
                return False

        serialization = self.spec.serialization_s(frame.wire_bytes)
        start = max(self.sim.now, self._busy_until)
        done = start + serialization
        self._busy_until = done
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.wire_bytes
        self.stats.busy_time += serialization
        if self.observer is not None:
            self.observer(frame, "sent", self.sim.now)

        if self.loss.should_drop(self._rng, frame, self.sim.now):
            self.stats.frames_lost += 1
            if self.observer is not None:
                self.observer(frame, "lost", self.sim.now)
            return True

        if (
            self.spec.corruption_probability > 0.0
            and self._rng.random() < self.spec.corruption_probability
        ):
            frame.corrupted = True
            self.stats.frames_corrupted += 1

        arrival = done + self.spec.propagation_s
        if self.spec.jitter_s > 0.0:
            arrival += float(self._rng.uniform(0.0, self.spec.jitter_s))
        self.sim.schedule_at(arrival, self._arrive, frame)
        return True

    def _arrive(self, frame: Frame) -> None:
        self.stats.frames_delivered += 1
        if self.observer is not None:
            self.observer(frame, "delivered", self.sim.now)
        self._deliver(frame)

    # ------------------------------------------------------------------
    @property
    def queue_delay(self) -> float:
        """Seconds a frame submitted now would wait before serializing."""
        return max(0.0, self._busy_until - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.spec.rate_gbps}Gbps sent={self.stats.frames_sent}>"
