"""Point-to-point links with serialization delay, propagation delay,
FIFO queueing, optional buffer caps, and loss injection.

The model is standard store-and-forward: a frame of ``L`` bytes on a link
of rate ``R`` bps occupies the transmitter for ``8L/R`` seconds starting
when the transmitter frees up, then arrives ``propagation`` seconds after
its last bit leaves.  Injected losses (paper SS5.5) consume transmitter
time -- the bits go out, they just never arrive -- which matches how loss
behaves on a real wire and matters for TAT-inflation measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.net.loss import BernoulliLoss, LossModel, NoLoss
from repro.net.packet import Frame
from repro.sim.engine import Simulator

__all__ = ["Link", "LinkSpec", "LinkStats"]

#: block size of the inlined Bernoulli draw buffer; must match
#: BernoulliLoss._BLOCK so draw alignment survives path rebinds
_BERN_BLOCK = BernoulliLoss._BLOCK

#: compiled send-body kernel, resolved lazily (the import reaches into
#: repro.core, which imports this module -- resolving at first use
#: instead of import time breaks the cycle).  False = not yet resolved.
_TRAIN_KERNEL: Any = False

#: placeholder block for kernel calls that take no draws (loss_p == 0)
#: or enter with a spent buffer (u_len=0 makes the kernel return
#: immediately so the caller refills)
_NO_U = np.zeros(1, dtype=np.float64)


def _link_kernel() -> Any:
    global _TRAIN_KERNEL
    if _TRAIN_KERNEL is False:
        try:
            from repro.core.backend import load_link_kernel

            _TRAIN_KERNEL = load_link_kernel()
        except Exception:
            _TRAIN_KERNEL = None
    return _TRAIN_KERNEL


@dataclass
class LinkSpec:
    """Parameters for one direction of a cable.

    ``propagation_s`` defaults to 500 ns -- roughly 100 m of fibre, a rack
    in-row run.  ``queue_bytes`` caps the transmitter backlog; ``None``
    means infinite (the paper's rack is dedicated and uncongested, SS3.2
    footnote).

    ``jitter_s`` adds a uniform random extra delay per frame, which can
    reorder deliveries -- the paper claims the protocol "is not
    influenced by packet reorderings" because every packet carries its
    pool index and offset (SS3.4); the reordering tests turn this on.

    ``corruption_probability`` flips the delivered frame's ``corrupted``
    flag (a bit-flip survives the wire but fails the receiver's
    checksum): "a simple checksum can be used to detect corruption and
    discard corrupted packets" (SS3.4).  Receivers treat a corrupt frame
    as a loss; the timeout machinery recovers it.
    """

    rate_gbps: float = 10.0
    propagation_s: float = 500e-9
    queue_bytes: int | None = None
    jitter_s: float = 0.0
    corruption_probability: float = 0.0

    @property
    def rate_bps(self) -> float:
        return self.rate_gbps * 1e9

    def serialization_s(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / self.rate_bps


@dataclass
class LinkStats:
    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    frames_queue_dropped: int = 0
    frames_corrupted: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    _extra: dict = field(default_factory=dict)

    def conservation_holds(self) -> bool:
        """DESIGN.md invariant: every serialized frame was either
        delivered or lost (queue drops never reached the transmitter and
        are accounted separately)."""
        return self.frames_sent == self.frames_delivered + self.frames_lost


class Link:
    """One unidirectional link.

    Parameters
    ----------
    sim:
        Simulation engine.
    spec:
        Rate / delay / buffer parameters.
    name:
        Identifies the link in stats and RNG substreams.
    deliver:
        Callback invoked as ``deliver(frame)`` at arrival time.  Set (or
        replaced) later via :meth:`connect` by topology builders.
    loss:
        Loss model; defaults to :class:`NoLoss`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str,
        deliver: Callable[[Frame], Any] | None = None,
        loss: LossModel | None = None,
    ):
        self.sim = sim
        self.name = name
        self._deliver = deliver
        self._deliver_many: Callable[[list[Frame]], Any] | None = None
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._rng = sim.rng(f"link:{name}")
        self._schedule_call_at = sim.schedule_call_at
        self._schedule_train = sim.schedule_train
        # local block buffer of uniforms feeding ALL of this link's own
        # draws -- loss, corruption, jitter -- in per-frame order (see
        # _refresh_drop_path); survives spec swaps, reset on loss swaps
        self._u_buf = None
        self._u_i = 0
        #: burst granularity: coalesce same-timestamp arrivals into one
        #: engine event (set by the job when ``granularity="burst"``)
        self.burst = False
        #: epsilon-window coalescing (burst mode only): arrivals within
        #: ``[t0, t0 + eps]`` of the group opener join its drain event,
        #: scheduled at ``t0 + eps``.  Zero keeps exact same-timestamp
        #: coalescing (bit-identical to packet mode); positive values
        #: trade bounded extra latency for larger batches.
        self.burst_epsilon = 0.0
        # current coalescing run: the open arrival group and its
        # timestamp (see the burst branch of `send` for the scheme)
        self._arrive_group: list | None = None
        self._arrive_t = -1.0
        # `spec` and `loss` are properties: fault injection and topology
        # surgery replace the whole object (never mutate fields in
        # place), and the setters refresh the hot-path caches below.
        self.spec = spec
        self.loss = loss if loss is not None else NoLoss()
        #: optional hook called with (frame, "sent"|"lost"|"delivered", time)
        self.observer: Callable[[Frame, str, float], Any] | None = None
        #: in-band telemetry tap (repro.obs.telemetry.LinkTap), installed
        #: by Telemetry.instrument_link; None (one branch) when disabled
        self.telemetry: Any | None = None

    @property
    def spec(self) -> LinkSpec:
        return self._spec

    @spec.setter
    def spec(self, spec: LinkSpec) -> None:
        self._spec = spec
        self._rate_bps = spec.rate_bps
        self._queue_bytes = spec.queue_bytes
        self._prop_s = spec.propagation_s
        self._jitter_s = spec.jitter_s
        self._corrupt_p = spec.corruption_probability
        self._refresh_drop_path()

    @property
    def loss(self) -> LossModel:
        return self._loss

    @loss.setter
    def loss(self, loss: LossModel) -> None:
        self._loss = loss
        # a NoLoss model needs no per-frame call (and consumes no
        # randomness), so the send path can skip it entirely
        self._lossless = type(loss) is NoLoss
        # a new loss model starts with a fresh draw buffer (a spec swap,
        # by contrast, keeps any pre-drawn uniforms -- discarding them
        # would change the rng consumption order mid-run)
        self._u_buf = None
        self._u_i = 0
        self._refresh_drop_path()

    def _refresh_drop_path(self) -> None:
        """Bind the per-frame draw path.

        ``_buffered`` links feed every draw the link makes -- the
        Bernoulli loss test, the corruption test, and the jitter sample
        -- from one block buffer of uniforms, consumed in per-frame
        order.  The decisions are bit-for-bit what the scalar calls
        produce: ``rng.random(n)`` walks the same double stream as ``n``
        scalar ``rng.random()`` calls, and ``rng.uniform(0, j)`` computes
        exactly ``j * rng.random()``.  Buffering is legal because the
        link's named substream has no other consumer -- which is also
        why it is restricted to the known-pure loss models: a stateful
        or user-supplied model may draw any number of uniforms per frame
        through its own ``should_drop``, so those keep the scalar calls
        (``_should_drop`` bound) in the exact historical order."""
        loss = getattr(self, "_loss", None)
        if loss is None:  # spec set before loss during __init__
            self._bern = None
            self._should_drop = None
            self._buffered = False
            return
        if type(loss) is BernoulliLoss:
            self._bern = loss
            self._should_drop = None
            self._buffered = True
        elif type(loss) is NoLoss:
            self._bern = None
            self._should_drop = None
            self._buffered = True
        else:
            self._bern = None
            self._should_drop = loss.should_drop
            self._buffered = False

    def connect(
        self,
        deliver: Callable[[Frame], Any],
        deliver_many: Callable[[list[Frame]], Any] | None = None,
    ) -> None:
        """Set the receiver callback.

        ``deliver_many``, when given, takes a whole coinciding-arrival
        group in one call; it must be behaviorally identical to calling
        ``deliver`` once per frame in order (the burst drains use it to
        skip the per-frame callback overhead).
        """
        self._deliver = deliver
        self._deliver_many = deliver_many

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Enqueue ``frame`` for transmission.

        Returns False if the frame was tail-dropped at the queue (only
        possible with a finite ``queue_bytes``).
        """
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")

        sim = self.sim
        now = sim.now
        stats = self.stats
        observer = self.observer
        tap = self.telemetry
        wire_bytes = frame.wire_bytes
        busy = self._busy_until
        queue_bytes = self._queue_bytes
        if queue_bytes is not None:
            backlog_s = busy - now
            if backlog_s > 0.0:
                backlog_bytes = backlog_s * self._rate_bps / 8.0
                if backlog_bytes + wire_bytes > queue_bytes:
                    stats.frames_queue_dropped += 1
                    if observer is not None:
                        observer(frame, "queue_dropped", now)
                    if tap is not None:
                        tap.on_drop(now, False)
                    return False
            elif wire_bytes > queue_bytes:
                stats.frames_queue_dropped += 1
                if observer is not None:
                    observer(frame, "queue_dropped", now)
                if tap is not None:
                    tap.on_drop(now, False)
                return False

        serialization = wire_bytes * 8.0 / self._rate_bps
        done = (busy if busy > now else now) + serialization
        self._busy_until = done
        stats.frames_sent += 1
        stats.bytes_sent += wire_bytes
        stats.busy_time += serialization
        if observer is not None:
            observer(frame, "sent", now)

        bern = self._bern
        if bern is not None:
            # inlined BernoulliLoss.should_drop_buffered against the
            # link-local buffer (this link's rng has no other consumer)
            p = bern.probability
            if p != 0.0:
                i = self._u_i
                buf = self._u_buf
                if buf is None or i >= _BERN_BLOCK:
                    self._u_buf = buf = self._rng.random(_BERN_BLOCK).tolist()
                    i = 0
                self._u_i = i + 1
                if buf[i] < p:
                    stats.frames_lost += 1
                    if observer is not None:
                        observer(frame, "lost", now)
                    if tap is not None:
                        tap.on_drop(now, True)
                    return True
        elif not self._lossless and self._should_drop(self._rng, frame, now):
            stats.frames_lost += 1
            if observer is not None:
                observer(frame, "lost", now)
            if tap is not None:
                tap.on_drop(now, True)
            return True

        buffered = self._buffered
        corrupt_p = self._corrupt_p
        if corrupt_p > 0.0:
            if buffered:
                i = self._u_i
                buf = self._u_buf
                if buf is None or i >= _BERN_BLOCK:
                    self._u_buf = buf = self._rng.random(_BERN_BLOCK).tolist()
                    i = 0
                self._u_i = i + 1
                u = buf[i]
            else:
                u = self._rng.random()
            if u < corrupt_p:
                frame.corrupted = True
                stats.frames_corrupted += 1

        arrival = done + self._prop_s
        jit = self._jitter_s
        if jit > 0.0:
            if buffered:
                # uniform(0, j) computes exactly j * random(): same draw,
                # same double, bit-identical arrival
                i = self._u_i
                buf = self._u_buf
                if buf is None or i >= _BERN_BLOCK:
                    self._u_buf = buf = self._rng.random(_BERN_BLOCK).tolist()
                    i = 0
                self._u_i = i + 1
                arrival += jit * buf[i]
            else:
                arrival += float(self._rng.uniform(0.0, jit))
        if tap is not None:
            # stamped only after the loss draw: a lost frame's bits (and
            # its in-band records) never reach anything that could drain
            # them, matching real INT
            tap.on_transmit(frame, now, wire_bytes, done, arrival)
        if self.burst:
            eps = self.burst_epsilon
            if eps > 0.0:
                # epsilon-window coalescing: the group opener's arrival
                # t0 schedules the drain at t0 + eps; frames landing in
                # [t0, t0 + eps] while the group is still open join it.
                # The drain clears the group ref, so a frame arriving
                # after the drain fired opens a fresh window even if its
                # timestamp is inside the old one.  Jittered arrivals
                # can run backwards; those open a fresh group too.
                group = self._arrive_group
                t0 = self._arrive_t
                if group is not None and t0 <= arrival <= t0 + eps:
                    group.append((arrival, frame))
                else:
                    self._arrive_group = group = [(arrival, frame)]
                    self._arrive_t = arrival
                    self._schedule_call_at(
                        arrival + eps, self._drain_window, group
                    )
                return True
            # Coalesce coinciding arrivals into one engine event, FIFO by
            # send order.  Run detection, not a timestamp map: a frame
            # extends the open group when its arrival matches, otherwise
            # it opens a new group (the drain event captures the list, so
            # no lookup on the way out).  Best-effort by design -- a
            # serializing link spaces arrivals by at least one frame
            # time, so same-link ties only occur with zero serialization
            # or jitter collisions, and a missed tie merely costs one
            # extra event, never correctness.
            group = self._arrive_group
            if group is not None and arrival == self._arrive_t:
                group.append(frame)
            else:
                self._arrive_group = group = [frame]
                self._arrive_t = arrival
                self._schedule_call_at(arrival, self._arrive_burst, group)
            return True
        # arrivals are never cancelled: handle-free fast path
        self._schedule_call_at(arrival, self._arrive, frame)
        return True

    # ------------------------------------------------------------------
    def send_train(self, pairs: list[tuple[float, Frame]]) -> int:
        """Process an ordered train of submits in one call.

        ``pairs`` is ``[(submit_time, frame), ...]`` with non-decreasing
        submit times at or after ``sim.now``.  Each frame's *send body*
        -- queue/backlog test, busy-chain serialization, stats, observer
        and telemetry taps, and the loss/corruption/jitter draws in
        per-frame stream order -- runs now, in one Python frame instead
        of one engine event per frame (the math uses each pair's submit
        time, never ``sim.now``, so running early is invisible).  The
        *dispatch* of each surviving frame (scheduling its arrival, or
        folding it into a burst coalescing group) is deferred to the
        frame's own submit time via one :meth:`~repro.sim.engine.
        Simulator.schedule_train` cursor.  The cursor is created in this
        very call -- the caller's event is where the per-frame path would
        have scheduled its TX entries -- and keeps that sequence number
        across re-insertions, so every entry it later creates lands at
        exactly the time, and with exactly the tie-breaking order, the
        per-frame path would have produced.  Frames submitting at
        ``sim.now`` itself (the chassis egress fan-out case) dispatch
        inline.

        Interleaving: the busy chain is replayed in submit order within
        the train, so a per-frame :meth:`send` submitting inside the
        train's span observes the whole train's backlog (and draws after
        the whole train), not the prefix in flight at its submit time --
        as if the NIC had enqueued the burst's TX descriptors in one
        shot, which is what DPDK's TX burst does.  At epsilon = 0 the
        wired call sites never overlap a train (timeout resends live on
        a far coarser grid than the TX sweep), so the bit-for-bit
        equivalence with the per-frame path holds; positive epsilon
        widens trains until resends can land inside a span, and there
        the two paths model the wire differently (both validly).

        Returns the number of frames accepted (= ``len(pairs)`` minus
        queue tail-drops, mirroring :meth:`send`'s return value).
        """
        if self.burst and self.burst_epsilon > 0.0:
            # epsilon-window fast path: the window logic keys on each
            # frame's *arrival* value only, so the appends can run here
            # instead of at the submit times -- no cursor, no dispatch
            # events at all.  The one observable difference from the
            # per-frame schedule: a group stays joinable until its drain
            # *fires*, so a frame whose submit falls after the drain
            # instant joins early here where the per-frame path would
            # open a fresh window.  Positive epsilon is already
            # protocol-equivalent-not-bit-exact (see the interleaving
            # note above); epsilon = 0 keeps the exact deferred dispatch
            # below.
            if (
                self._queue_bytes is None
                and self.observer is None
                and self.telemetry is None
                and self._corrupt_p == 0.0
                and self._jitter_s == 0.0
                and (self._bern is not None or self._lossless)
            ):
                self._send_train_window_fused(pairs)
                return len(pairs)
            records, accepted = self.send_bodies(pairs)
            self.dispatch_window_records(records)
            return accepted
        records, accepted = self.send_bodies(pairs)
        dispatch = [r for r in records if r is not None]
        n = len(dispatch)
        if n:
            dispatch_one = self._dispatch_one
            # the leading run submitting at this very instant dispatches
            # inline -- this event occupies the sequence position the
            # per-frame path's first submit event would have
            now = self.sim.now
            i = 0
            while i < n and dispatch[i][0] == now:
                dispatch_one(dispatch[i])
                i += 1
            if i < n:
                self._schedule_train(
                    [d[0] for d in dispatch[i:]], dispatch_one, dispatch[i:]
                )
        return accepted

    def dispatch_window_records(
        self, records: list[tuple[float, float, Frame] | None]
    ) -> None:
        """Fold a body sweep's surviving records into the epsilon window.

        Only valid on a burst link with a positive ``burst_epsilon`` --
        the batched form of :meth:`_dispatch_one`'s window branch, with
        the group state hoisted out of the per-frame loop.  Used by the
        :meth:`send_train` fast path and the chassis egress fan-out
        (which at positive epsilon needs no cross-link delivery-order
        interleaving: appends to different links' windows commute, and
        entries are only created when a window opens, at arrival-derived
        times).
        """
        eps = self.burst_epsilon
        group = self._arrive_group
        t0 = self._arrive_t
        schedule = self._schedule_call_at
        drain = self._drain_window
        for rec in records:
            if rec is None:
                continue
            arrival = rec[1]
            if group is not None and t0 <= arrival <= t0 + eps:
                group.append((arrival, rec[2]))
            else:
                group = [(arrival, rec[2])]
                t0 = arrival
                self._arrive_group = group
                self._arrive_t = t0
                schedule(t0 + eps, drain, group)

    def _send_train_window_fused(self, pairs: list[tuple[float, Frame]]) -> None:
        """Fused clean-link body sweep + epsilon-window fold.

        One pass over ``pairs`` doing what :meth:`send_bodies` followed
        by :meth:`dispatch_window_records` would do, without building
        the intermediate record list -- valid only for the
        configuration the caller checked (burst with a positive window,
        no queue cap, no corruption, no jitter, no observer/telemetry,
        Bernoulli-or-no loss).  Interleaving each frame's window fold
        with its send body is unobservable: the body phase touches only
        the RNG stream and link counters, the fold only the group state,
        and no event can fire inside this call.
        """
        stats = self.stats
        rng = self._rng
        rate = self._rate_bps
        prop = self._prop_s
        bern = self._bern
        p = bern.probability if bern is not None else 0.0
        busy = self._busy_until
        busy_time = stats.busy_time
        u_i = self._u_i
        u_buf = self._u_buf
        lost = 0
        bytes_sent = 0
        eps = self.burst_epsilon
        group = self._arrive_group
        t0 = self._arrive_t
        schedule = self._schedule_call_at
        drain = self._drain_window
        for t, frame in pairs:
            wire_bytes = frame.wire_bytes
            serialization = wire_bytes * 8.0 / rate
            done = (busy if busy > t else t) + serialization
            busy = done
            bytes_sent += wire_bytes
            busy_time += serialization
            if p != 0.0:
                if u_buf is None or u_i >= _BERN_BLOCK:
                    u_buf = rng.random(_BERN_BLOCK).tolist()
                    u_i = 0
                u = u_buf[u_i]
                u_i += 1
                if u < p:
                    lost += 1
                    continue
            arrival = done + prop
            if group is not None and t0 <= arrival <= t0 + eps:
                group.append((arrival, frame))
            else:
                group = [(arrival, frame)]
                t0 = arrival
                self._arrive_group = group
                self._arrive_t = t0
                schedule(t0 + eps, drain, group)
        self._busy_until = busy
        self._u_i = u_i
        self._u_buf = u_buf
        stats.busy_time = busy_time
        stats.frames_sent += len(pairs)
        stats.frames_lost += lost
        stats.bytes_sent += bytes_sent

    def send_bodies(
        self, pairs: list[tuple[float, Frame]]
    ) -> tuple[list[tuple[float, float, Frame] | None], int]:
        """Run the send bodies of a train; leave the dispatch to the caller.

        The body phase of :meth:`send_train`, split out for callers that
        fan one drain out over *several* links (the chassis egress): they
        batch the bodies per link but must create each frame's engine
        entry in the original cross-link delivery order -- the order the
        per-frame loop would have -- so they interleave the returned
        records themselves through :meth:`_dispatch_one`.

        Returns ``(records, accepted)``: ``records`` is aligned with
        ``pairs`` (``None`` where the frame was tail-dropped or lost),
        and ``accepted`` is ``len(pairs)`` minus queue tail-drops.
        """
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")

        stats = self.stats
        observer = self.observer
        tap = self.telemetry
        rng = self._rng
        rate = self._rate_bps
        queue_bytes = self._queue_bytes
        prop = self._prop_s
        jit = self._jitter_s
        corrupt_p = self._corrupt_p
        buffered = self._buffered
        bern = self._bern
        lossless = self._lossless
        should_drop = self._should_drop
        busy = self._busy_until
        sent = 0
        lost = 0
        qdrops = 0
        bytes_sent = 0
        # the block-buffer cursor lives in locals for the whole sweep
        # (written back below); nothing else consumes this link's stream
        # while the bodies run
        u_i = self._u_i
        u_buf = self._u_buf

        if (
            queue_bytes is None
            and observer is None
            and tap is None
            and corrupt_p == 0.0
            and jit == 0.0
            and (bern is not None or lossless)
            and len(pairs) >= 64
        ):
            # below ~64 frames the ctypes marshalling (ndpointer checks,
            # fromiter, scratch arrays) costs more than the loop it
            # replaces; steady-state windows here are ~25 frames, so the
            # kernel effectively serves the pool-sized opening trains
            kernel = _link_kernel()
            if kernel is not None:
                # compiled body sweep: same float ops in the same order
                # as the loop below (see repro.core.backend), covering
                # the clean-link common case -- no queue cap, no
                # corruption, no jitter, no per-frame observer/tap
                n = len(pairs)
                t_arr = np.fromiter((p[0] for p in pairs), dtype=np.float64, count=n)
                wb_arr = np.fromiter(
                    (p[1].wire_bytes for p in pairs), dtype=np.int64, count=n
                )
                p_loss = bern.probability if bern is not None else 0.0
                arrival = np.empty(n, dtype=np.float64)
                ok = np.empty(n, dtype=np.int8)
                fstate = np.array([busy, stats.busy_time], dtype=np.float64)
                istate = np.array(
                    [u_i if u_buf is not None else _BERN_BLOCK], dtype=np.int64
                )
                train_bodies = kernel.train_bodies
                # the block buffer is kept as a plain list elsewhere (the
                # per-draw paths index it); the kernel wants contiguous
                # doubles, so convert at the boundary -- same bits either
                # way, and this path only runs for >=64-frame trains
                u_np = (
                    np.array(u_buf, dtype=np.float64)
                    if u_buf is not None
                    else None
                )
                i = 0
                while True:
                    buf = u_np if u_np is not None else _NO_U
                    ulen = _BERN_BLOCK if u_np is not None else 0
                    i = train_bodies(
                        n, i, t_arr, wb_arr, rate, prop, p_loss,
                        buf, ulen, arrival, ok, fstate, istate,
                    )
                    if i >= n:
                        break
                    # block spent mid-train: refill exactly as the
                    # per-frame draw would have, re-enter at frame i
                    u_np = rng.random(_BERN_BLOCK)
                    istate[0] = 0
                self._busy_until = float(fstate[0])
                stats.busy_time = float(fstate[1])
                if u_np is not None:
                    # only when draws ran: a lossless sweep leaves the
                    # cursor exactly as the per-frame path would
                    self._u_i = int(istate[0])
                    self._u_buf = u_np.tolist()
                records = [
                    (pair[0], a, pair[1]) if okj else None
                    for pair, a, okj in zip(pairs, arrival.tolist(), ok.tolist())
                ]
                delivered = int(np.count_nonzero(ok))
                stats.frames_sent += n
                stats.frames_lost += n - delivered
                stats.bytes_sent += int(wb_arr.sum())
                return records, n

        records: list[tuple[float, float, Frame] | None] = []

        for t, frame in pairs:
            wire_bytes = frame.wire_bytes
            if queue_bytes is not None:
                backlog_s = busy - t
                if backlog_s > 0.0:
                    if backlog_s * rate / 8.0 + wire_bytes > queue_bytes:
                        qdrops += 1
                        records.append(None)
                        if observer is not None:
                            observer(frame, "queue_dropped", t)
                        if tap is not None:
                            tap.on_drop(t, False)
                        continue
                elif wire_bytes > queue_bytes:
                    qdrops += 1
                    records.append(None)
                    if observer is not None:
                        observer(frame, "queue_dropped", t)
                    if tap is not None:
                        tap.on_drop(t, False)
                    continue

            serialization = wire_bytes * 8.0 / rate
            done = (busy if busy > t else t) + serialization
            busy = done
            sent += 1
            bytes_sent += wire_bytes
            # accumulated per frame, not batched: float addition is not
            # associative, and busy_time must match the per-frame path
            # bit for bit
            stats.busy_time += serialization
            if observer is not None:
                observer(frame, "sent", t)

            if bern is not None:
                p = bern.probability
                if p != 0.0:
                    if u_buf is None or u_i >= _BERN_BLOCK:
                        u_buf = rng.random(_BERN_BLOCK).tolist()
                        u_i = 0
                    u = u_buf[u_i]
                    u_i += 1
                    if u < p:
                        lost += 1
                        records.append(None)
                        if observer is not None:
                            observer(frame, "lost", t)
                        if tap is not None:
                            tap.on_drop(t, True)
                        continue
            elif not lossless and should_drop(rng, frame, t):
                lost += 1
                records.append(None)
                if observer is not None:
                    observer(frame, "lost", t)
                if tap is not None:
                    tap.on_drop(t, True)
                continue

            if corrupt_p > 0.0:
                if buffered:
                    if u_buf is None or u_i >= _BERN_BLOCK:
                        u_buf = rng.random(_BERN_BLOCK).tolist()
                        u_i = 0
                    u = u_buf[u_i]
                    u_i += 1
                else:
                    u = rng.random()
                if u < corrupt_p:
                    frame.corrupted = True
                    stats.frames_corrupted += 1

            arrival = done + prop
            if jit > 0.0:
                if buffered:
                    if u_buf is None or u_i >= _BERN_BLOCK:
                        u_buf = rng.random(_BERN_BLOCK).tolist()
                        u_i = 0
                    arrival += jit * u_buf[u_i]
                    u_i += 1
                else:
                    arrival += float(rng.uniform(0.0, jit))

            if tap is not None:
                tap.on_transmit(frame, t, wire_bytes, done, arrival)

            records.append((t, arrival, frame))

        self._busy_until = busy
        self._u_i = u_i
        self._u_buf = u_buf
        stats.frames_sent += sent
        stats.frames_lost += lost
        stats.frames_queue_dropped += qdrops
        stats.bytes_sent += bytes_sent
        return records, len(pairs) - qdrops

    def _dispatch_one(self, rec: tuple[float, float, Frame]) -> None:
        """Dispatch one train frame at its submit time.

        Replicates the tail of :meth:`send` -- the part that creates
        engine entries or mutates coalescing groups -- for a frame whose
        send body already ran in :meth:`send_train`.  Running at the
        frame's own submit time keeps group open/closed state and entry
        insertion order identical to the per-frame path.
        """
        arrival = rec[1]
        frame = rec[2]
        if self.burst:
            eps = self.burst_epsilon
            if eps > 0.0:
                group = self._arrive_group
                t0 = self._arrive_t
                if group is not None and t0 <= arrival <= t0 + eps:
                    group.append((arrival, frame))
                else:
                    self._arrive_group = group = [(arrival, frame)]
                    self._arrive_t = arrival
                    self._schedule_call_at(arrival + eps, self._drain_window, group)
                return
            group = self._arrive_group
            if group is not None and arrival == self._arrive_t:
                group.append(frame)
            else:
                self._arrive_group = group = [frame]
                self._arrive_t = arrival
                self._schedule_call_at(arrival, self._arrive_burst, group)
            return
        self._schedule_call_at(arrival, self._arrive, frame)

    def _arrive(self, frame: Frame) -> None:
        self.stats.frames_delivered += 1
        if self.observer is not None:
            self.observer(frame, "delivered", self.sim.now)
        self._deliver(frame)

    def _arrive_burst(self, frames: list[Frame]) -> None:
        """Deliver one coinciding-arrival group (burst granularity).

        Per-frame stats and observer calls match :meth:`_arrive`; the
        receiver sees the frames one at a time in send order, at the
        same ``sim.now`` -- downstream burst endpoints re-group them
        under that timestamp anyway.
        """
        if frames is self._arrive_group:
            self._arrive_group = None
        stats = self.stats
        stats.frames_delivered += len(frames)
        observer = self.observer
        if observer is not None:
            t = self.sim.now
            for frame in frames:
                observer(frame, "delivered", t)
        deliver_many = self._deliver_many
        if deliver_many is not None:
            deliver_many(frames)
            return
        deliver = self._deliver
        for frame in frames:
            deliver(frame)

    def _drain_window(self, pairs: list[tuple[float, Frame]]) -> None:
        """Deliver one epsilon-window group at ``t0 + eps``.

        Frames are handed over in arrival order (stable sort keeps send
        order for ties), so the receiver observes the same relative
        sequence it would have seen frame-by-frame -- just compressed to
        one instant.
        """
        if pairs is self._arrive_group:
            self._arrive_group = None
        pairs.sort(key=lambda p: p[0])
        stats = self.stats
        stats.frames_delivered += len(pairs)
        observer = self.observer
        if observer is not None:
            t = self.sim.now
            for _, frame in pairs:
                observer(frame, "delivered", t)
        deliver_many = self._deliver_many
        if deliver_many is not None:
            deliver_many([frame for _, frame in pairs])
            return
        deliver = self._deliver
        for _, frame in pairs:
            deliver(frame)

    # ------------------------------------------------------------------
    @property
    def queue_delay(self) -> float:
        """Seconds a frame submitted now would wait before serializing."""
        return max(0.0, self._busy_until - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.spec.rate_gbps}Gbps sent={self.stats.frames_sent}>"
