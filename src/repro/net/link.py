"""Point-to-point links with serialization delay, propagation delay,
FIFO queueing, optional buffer caps, and loss injection.

The model is standard store-and-forward: a frame of ``L`` bytes on a link
of rate ``R`` bps occupies the transmitter for ``8L/R`` seconds starting
when the transmitter frees up, then arrives ``propagation`` seconds after
its last bit leaves.  Injected losses (paper SS5.5) consume transmitter
time -- the bits go out, they just never arrive -- which matches how loss
behaves on a real wire and matters for TAT-inflation measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.loss import BernoulliLoss, LossModel, NoLoss
from repro.net.packet import Frame
from repro.sim.engine import Simulator

__all__ = ["Link", "LinkSpec", "LinkStats"]

#: block size of the inlined Bernoulli draw buffer; must match
#: BernoulliLoss._BLOCK so draw alignment survives path rebinds
_BERN_BLOCK = BernoulliLoss._BLOCK


@dataclass
class LinkSpec:
    """Parameters for one direction of a cable.

    ``propagation_s`` defaults to 500 ns -- roughly 100 m of fibre, a rack
    in-row run.  ``queue_bytes`` caps the transmitter backlog; ``None``
    means infinite (the paper's rack is dedicated and uncongested, SS3.2
    footnote).

    ``jitter_s`` adds a uniform random extra delay per frame, which can
    reorder deliveries -- the paper claims the protocol "is not
    influenced by packet reorderings" because every packet carries its
    pool index and offset (SS3.4); the reordering tests turn this on.

    ``corruption_probability`` flips the delivered frame's ``corrupted``
    flag (a bit-flip survives the wire but fails the receiver's
    checksum): "a simple checksum can be used to detect corruption and
    discard corrupted packets" (SS3.4).  Receivers treat a corrupt frame
    as a loss; the timeout machinery recovers it.
    """

    rate_gbps: float = 10.0
    propagation_s: float = 500e-9
    queue_bytes: int | None = None
    jitter_s: float = 0.0
    corruption_probability: float = 0.0

    @property
    def rate_bps(self) -> float:
        return self.rate_gbps * 1e9

    def serialization_s(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / self.rate_bps


@dataclass
class LinkStats:
    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    frames_queue_dropped: int = 0
    frames_corrupted: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    _extra: dict = field(default_factory=dict)

    def conservation_holds(self) -> bool:
        """DESIGN.md invariant: every serialized frame was either
        delivered or lost (queue drops never reached the transmitter and
        are accounted separately)."""
        return self.frames_sent == self.frames_delivered + self.frames_lost


class Link:
    """One unidirectional link.

    Parameters
    ----------
    sim:
        Simulation engine.
    spec:
        Rate / delay / buffer parameters.
    name:
        Identifies the link in stats and RNG substreams.
    deliver:
        Callback invoked as ``deliver(frame)`` at arrival time.  Set (or
        replaced) later via :meth:`connect` by topology builders.
    loss:
        Loss model; defaults to :class:`NoLoss`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str,
        deliver: Callable[[Frame], Any] | None = None,
        loss: LossModel | None = None,
    ):
        self.sim = sim
        self.name = name
        self._deliver = deliver
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._rng = sim.rng(f"link:{name}")
        self._schedule_call_at = sim.schedule_call_at
        # local block buffer for the inlined Bernoulli drop test (see
        # _refresh_drop_path); survives spec swaps, reset on loss swaps
        self._drop_buf = None
        self._drop_i = 0
        #: burst granularity: coalesce same-timestamp arrivals into one
        #: engine event (set by the job when ``granularity="burst"``)
        self.burst = False
        #: epsilon-window coalescing (burst mode only): arrivals within
        #: ``[t0, t0 + eps]`` of the group opener join its drain event,
        #: scheduled at ``t0 + eps``.  Zero keeps exact same-timestamp
        #: coalescing (bit-identical to packet mode); positive values
        #: trade bounded extra latency for larger batches.
        self.burst_epsilon = 0.0
        # current coalescing run: the open arrival group and its
        # timestamp (see the burst branch of `send` for the scheme)
        self._arrive_group: list | None = None
        self._arrive_t = -1.0
        # `spec` and `loss` are properties: fault injection and topology
        # surgery replace the whole object (never mutate fields in
        # place), and the setters refresh the hot-path caches below.
        self.spec = spec
        self.loss = loss if loss is not None else NoLoss()
        #: optional hook called with (frame, "sent"|"lost"|"delivered", time)
        self.observer: Callable[[Frame, str, float], Any] | None = None
        #: in-band telemetry tap (repro.obs.telemetry.LinkTap), installed
        #: by Telemetry.instrument_link; None (one branch) when disabled
        self.telemetry: Any | None = None

    @property
    def spec(self) -> LinkSpec:
        return self._spec

    @spec.setter
    def spec(self, spec: LinkSpec) -> None:
        self._spec = spec
        self._rate_bps = spec.rate_bps
        self._queue_bytes = spec.queue_bytes
        self._prop_s = spec.propagation_s
        self._jitter_s = spec.jitter_s
        self._corrupt_p = spec.corruption_probability
        self._refresh_drop_path()

    @property
    def loss(self) -> LossModel:
        return self._loss

    @loss.setter
    def loss(self, loss: LossModel) -> None:
        self._loss = loss
        # a NoLoss model needs no per-frame call (and consumes no
        # randomness), so the send path can skip it entirely
        self._lossless = type(loss) is NoLoss
        # a new loss model starts with a fresh draw buffer (a spec swap,
        # by contrast, keeps any pre-drawn uniforms -- discarding them
        # would change the rng consumption order mid-run)
        self._drop_buf = None
        self._drop_i = 0
        self._refresh_drop_path()

    def _refresh_drop_path(self) -> None:
        """Bind the per-frame drop test.  Bernoulli models support block-
        buffered draws (``rng.random(n)`` walks the same double stream as
        ``n`` scalar calls), but only when the loss model is the sole
        consumer of this link's rng -- i.e. the link itself draws no
        jitter or corruption randomness.  When eligible, ``send`` inlines
        the draw against a link-local buffer (``_bern`` set); otherwise it
        calls the model's scalar ``should_drop``."""
        loss = getattr(self, "_loss", None)
        if loss is None:  # spec set before loss during __init__
            self._bern = None
            self._should_drop = None
            return
        spec = self._spec
        if (
            type(loss) is BernoulliLoss
            and spec.jitter_s == 0.0
            and spec.corruption_probability == 0.0
        ):
            self._bern = loss
            self._should_drop = None
        else:
            self._bern = None
            self._should_drop = loss.should_drop

    def connect(self, deliver: Callable[[Frame], Any]) -> None:
        """Set the receiver callback."""
        self._deliver = deliver

    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Enqueue ``frame`` for transmission.

        Returns False if the frame was tail-dropped at the queue (only
        possible with a finite ``queue_bytes``).
        """
        if self._deliver is None:
            raise RuntimeError(f"link {self.name} has no receiver connected")

        sim = self.sim
        now = sim.now
        stats = self.stats
        observer = self.observer
        tap = self.telemetry
        wire_bytes = frame.wire_bytes
        busy = self._busy_until
        queue_bytes = self._queue_bytes
        if queue_bytes is not None:
            backlog_s = busy - now
            if backlog_s > 0.0:
                backlog_bytes = backlog_s * self._rate_bps / 8.0
                if backlog_bytes + wire_bytes > queue_bytes:
                    stats.frames_queue_dropped += 1
                    if observer is not None:
                        observer(frame, "queue_dropped", now)
                    if tap is not None:
                        tap.on_drop(now, False)
                    return False
            elif wire_bytes > queue_bytes:
                stats.frames_queue_dropped += 1
                if observer is not None:
                    observer(frame, "queue_dropped", now)
                if tap is not None:
                    tap.on_drop(now, False)
                return False

        serialization = wire_bytes * 8.0 / self._rate_bps
        done = (busy if busy > now else now) + serialization
        self._busy_until = done
        stats.frames_sent += 1
        stats.bytes_sent += wire_bytes
        stats.busy_time += serialization
        if observer is not None:
            observer(frame, "sent", now)

        bern = self._bern
        if bern is not None:
            # inlined BernoulliLoss.should_drop_buffered against the
            # link-local buffer (this link's rng has no other consumer)
            p = bern.probability
            if p != 0.0:
                i = self._drop_i
                buf = self._drop_buf
                if buf is None or i >= _BERN_BLOCK:
                    self._drop_buf = buf = self._rng.random(_BERN_BLOCK)
                    i = 0
                self._drop_i = i + 1
                if buf[i] < p:
                    stats.frames_lost += 1
                    if observer is not None:
                        observer(frame, "lost", now)
                    if tap is not None:
                        tap.on_drop(now, True)
                    return True
        elif not self._lossless and self._should_drop(self._rng, frame, now):
            stats.frames_lost += 1
            if observer is not None:
                observer(frame, "lost", now)
            if tap is not None:
                tap.on_drop(now, True)
            return True

        corrupt_p = self._corrupt_p
        if corrupt_p > 0.0 and self._rng.random() < corrupt_p:
            frame.corrupted = True
            stats.frames_corrupted += 1

        arrival = done + self._prop_s
        if self._jitter_s > 0.0:
            arrival += float(self._rng.uniform(0.0, self._jitter_s))
        if tap is not None:
            # stamped only after the loss draw: a lost frame's bits (and
            # its in-band records) never reach anything that could drain
            # them, matching real INT
            tap.on_transmit(frame, now, wire_bytes, done, arrival)
        if self.burst:
            eps = self.burst_epsilon
            if eps > 0.0:
                # epsilon-window coalescing: the group opener's arrival
                # t0 schedules the drain at t0 + eps; frames landing in
                # [t0, t0 + eps] while the group is still open join it.
                # The drain clears the group ref, so a frame arriving
                # after the drain fired opens a fresh window even if its
                # timestamp is inside the old one.  Jittered arrivals
                # can run backwards; those open a fresh group too.
                group = self._arrive_group
                t0 = self._arrive_t
                if group is not None and t0 <= arrival <= t0 + eps:
                    group.append((arrival, frame))
                else:
                    self._arrive_group = group = [(arrival, frame)]
                    self._arrive_t = arrival
                    self._schedule_call_at(
                        arrival + eps, self._drain_window, group
                    )
                return True
            # Coalesce coinciding arrivals into one engine event, FIFO by
            # send order.  Run detection, not a timestamp map: a frame
            # extends the open group when its arrival matches, otherwise
            # it opens a new group (the drain event captures the list, so
            # no lookup on the way out).  Best-effort by design -- a
            # serializing link spaces arrivals by at least one frame
            # time, so same-link ties only occur with zero serialization
            # or jitter collisions, and a missed tie merely costs one
            # extra event, never correctness.
            group = self._arrive_group
            if group is not None and arrival == self._arrive_t:
                group.append(frame)
            else:
                self._arrive_group = group = [frame]
                self._arrive_t = arrival
                self._schedule_call_at(arrival, self._arrive_burst, group)
            return True
        # arrivals are never cancelled: handle-free fast path
        self._schedule_call_at(arrival, self._arrive, frame)
        return True

    def _arrive(self, frame: Frame) -> None:
        self.stats.frames_delivered += 1
        if self.observer is not None:
            self.observer(frame, "delivered", self.sim.now)
        self._deliver(frame)

    def _arrive_burst(self, frames: list[Frame]) -> None:
        """Deliver one coinciding-arrival group (burst granularity).

        Per-frame stats and observer calls match :meth:`_arrive`; the
        receiver sees the frames one at a time in send order, at the
        same ``sim.now`` -- downstream burst endpoints re-group them
        under that timestamp anyway.
        """
        if frames is self._arrive_group:
            self._arrive_group = None
        stats = self.stats
        stats.frames_delivered += len(frames)
        observer = self.observer
        if observer is not None:
            t = self.sim.now
            for frame in frames:
                observer(frame, "delivered", t)
        deliver = self._deliver
        for frame in frames:
            deliver(frame)

    def _drain_window(self, pairs: list[tuple[float, Frame]]) -> None:
        """Deliver one epsilon-window group at ``t0 + eps``.

        Frames are handed over in arrival order (stable sort keeps send
        order for ties), so the receiver observes the same relative
        sequence it would have seen frame-by-frame -- just compressed to
        one instant.
        """
        if pairs is self._arrive_group:
            self._arrive_group = None
        pairs.sort(key=lambda p: p[0])
        stats = self.stats
        stats.frames_delivered += len(pairs)
        observer = self.observer
        if observer is not None:
            t = self.sim.now
            for _, frame in pairs:
                observer(frame, "delivered", t)
        deliver = self._deliver
        for _, frame in pairs:
            deliver(frame)

    # ------------------------------------------------------------------
    @property
    def queue_delay(self) -> float:
        """Seconds a frame submitted now would wait before serializing."""
        return max(0.0, self._busy_until - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.spec.rate_gbps}Gbps sent={self.stats.frames_sent}>"
