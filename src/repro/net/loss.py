"""Packet-loss models.

The paper (SS5.5) injects "a uniform random loss probability between 0.01%
and 1% applied on every link" -- that is :class:`BernoulliLoss`.  For the
Appendix A execution trace we need drops at exact points in the packet
stream, which :class:`ScriptedLoss` provides.  :class:`GilbertElliottLoss`
adds bursty loss as an extension (real Ethernet losses cluster), used by
the failure-injection tests.
"""

from __future__ import annotations

from typing import Any, Protocol

import numpy as np

__all__ = [
    "BernoulliLoss",
    "GilbertElliottLoss",
    "LossModel",
    "NoLoss",
    "ScriptedLoss",
]


class LossModel(Protocol):
    """Decides, per frame, whether the link drops it."""

    def should_drop(self, rng: np.random.Generator, frame: Any, time: float) -> bool:
        """Return True to drop this frame."""
        ...  # pragma: no cover - protocol


class NoLoss:
    """A perfect link."""

    def should_drop(self, rng: np.random.Generator, frame: Any, time: float) -> bool:
        return False


class BernoulliLoss:
    """Independent per-frame loss with fixed probability.

    This is the paper's loss injection model (SS5.5).

    :meth:`should_drop_buffered` draws uniforms in blocks: ``rng.random(n)``
    yields bit-for-bit the same doubles as ``n`` scalar ``rng.random()``
    calls (both walk the generator's double stream in order), so the
    values and their order are unchanged -- but the block is consumed from
    the stream up front, so it is only safe when this model is the
    generator's SOLE consumer.  :class:`~repro.net.link.Link` selects it
    when the link draws no jitter or corruption randomness of its own;
    everything else must use the scalar :meth:`should_drop`.
    """

    _BLOCK = 512

    def __init__(self, probability: float):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        self.probability = probability
        # per-generator buffer (keyed by the generator itself -- identity
        # hash; an id() key could be recycled after GC): a model is
        # normally bound to one link (one rng), but sharing stays safe
        self._buffers: dict = {}

    def should_drop(self, rng: np.random.Generator, frame: Any, time: float) -> bool:
        if self.probability == 0.0:
            return False
        return bool(rng.random() < self.probability)

    def should_drop_buffered(
        self, rng: np.random.Generator, frame: Any, time: float
    ) -> bool:
        """Same decisions as :meth:`should_drop`; see the class docstring
        for when buffering is legal."""
        p = self.probability
        if p == 0.0:
            return False
        buf = self._buffers.get(rng)
        if buf is None or buf[1] >= self._BLOCK:
            self._buffers[rng] = buf = [rng.random(self._BLOCK), 0]
        i = buf[1]
        buf[1] = i + 1
        return bool(buf[0][i] < p)

    def __repr__(self) -> str:
        return f"BernoulliLoss({self.probability!r})"


class GilbertElliottLoss:
    """Two-state bursty loss (Gilbert-Elliott).

    The link alternates between a Good and a Bad state with per-frame
    transition probabilities; each state has its own drop probability.
    With default parameters the long-run loss rate is small but losses
    arrive in clusters, stressing SwitchML's per-slot retransmission more
    than independent drops of the same average rate.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.0005,
        p_bad_to_good: float = 0.2,
        loss_good: float = 0.0,
        loss_bad: float = 0.3,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False

    @property
    def steady_state_loss(self) -> float:
        """Long-run average drop probability of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_bad if self._bad else self.loss_good
        frac_bad = self.p_good_to_bad / denom
        return frac_bad * self.loss_bad + (1 - frac_bad) * self.loss_good

    def should_drop(self, rng: np.random.Generator, frame: Any, time: float) -> bool:
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        p = self.loss_bad if self._bad else self.loss_good
        return bool(p > 0.0 and rng.random() < p)


class ScriptedLoss:
    """Drop exactly the frames at the given 0-based positions in the
    link's frame stream.

    Used to replay deterministic scenarios such as the Appendix A example
    (drop worker 3's first update on the upstream path; drop worker 1's
    result on the downstream path).
    """

    def __init__(self, drop_positions: set[int] | list[int] | tuple[int, ...]):
        self.drop_positions = set(int(i) for i in drop_positions)
        if any(i < 0 for i in self.drop_positions):
            raise ValueError("drop positions must be non-negative")
        self._count = 0

    def should_drop(self, rng: np.random.Generator, frame: Any, time: float) -> bool:
        position = self._count
        self._count += 1
        return position in self.drop_positions

    @property
    def frames_seen(self) -> int:
        return self._count
