"""Wire frames and size accounting.

The paper's SwitchML packet carries ``k = 32`` 32-bit integers (128 bytes
of payload) in a ``b = 180`` byte frame (SS3.4, SS3.6).  The 52-byte
difference is the stack of headers: Ethernet (14) + IPv4 (20) + UDP (8) +
the SwitchML header (wid, ver, idx, off -- 10 bytes padded to 10) below.
The same 52 bytes on a 1516-byte MTU frame leaves room for 366 elements
(1464 bytes), giving the 28.9 % -> 3.4 % header-overhead comparison of
SS5.5 ("Limited payload size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "ETHERNET_OVERHEAD_BYTES",
    "FRAME_OVERHEAD_BYTES",
    "MTU_FRAME_BYTES",
    "SWITCHML_FRAME_BYTES",
    "SWITCHML_HEADER_BYTES",
    "BYTES_PER_ELEMENT",
    "Frame",
    "elements_per_packet",
    "frame_bytes_for_elements",
    "goodput_fraction",
]

#: Ethernet (14) + IPv4 (20) + UDP (8) header bytes.
ETHERNET_OVERHEAD_BYTES = 42

#: SwitchML header: worker id (2) + pool version (1, padded) + pool index
#: (2) + tensor offset (4) + job/checksum (1) = 10 bytes.
SWITCHML_HEADER_BYTES = 10

#: Total per-frame overhead on the wire.
FRAME_OVERHEAD_BYTES = ETHERNET_OVERHEAD_BYTES + SWITCHML_HEADER_BYTES

#: Bytes per tensor element; the switch aggregates 32-bit integers.
BYTES_PER_ELEMENT = 4

#: The paper's frame size: 32 elements * 4 B + 52 B overhead = 180 B.
SWITCHML_FRAME_BYTES = 32 * BYTES_PER_ELEMENT + FRAME_OVERHEAD_BYTES

#: The paper's MTU comparison point: 1516-byte frames, 366 elements.
MTU_FRAME_BYTES = 1516


def frame_bytes_for_elements(k: int, bytes_per_element: int = BYTES_PER_ELEMENT) -> int:
    """Wire size of a SwitchML frame carrying ``k`` elements."""
    if k <= 0:
        raise ValueError(f"element count must be positive, got {k}")
    return k * bytes_per_element + FRAME_OVERHEAD_BYTES


def elements_per_packet(frame_bytes: int, bytes_per_element: int = BYTES_PER_ELEMENT) -> int:
    """Elements that fit in a frame of ``frame_bytes`` total wire size."""
    payload = frame_bytes - FRAME_OVERHEAD_BYTES
    if payload < bytes_per_element:
        raise ValueError(f"frame of {frame_bytes} B has no room for payload")
    return payload // bytes_per_element


def goodput_fraction(k: int, bytes_per_element: int = BYTES_PER_ELEMENT) -> float:
    """Payload fraction of the wire frame for ``k`` elements.

    ``goodput_fraction(32) == 128/180 ~= 0.711`` -- the 28.9 % overhead the
    paper quotes; ``goodput_fraction(366) ~= 0.966``.
    """
    payload = k * bytes_per_element
    return payload / (payload + FRAME_OVERHEAD_BYTES)


@dataclass(slots=True)
class Frame:
    """A frame on the wire.

    ``message`` is the protocol-level message object (e.g. a
    :class:`repro.core.packet.SwitchMLPacket`); the network layer treats it
    opaquely.  ``flow_key`` selects the RX core at the receiving host
    (flow-director sharding, paper SSB); SwitchML uses the pool index so
    that slots shard across cores "without any shared state".

    Frames are created once per packet-hop in the simulator's inner loop,
    so the class is slotted and does no validation; link and host layers
    validate sizes where they are configured.
    """

    wire_bytes: int
    message: Any = None
    src: str = ""
    dst: str = ""
    flow_key: int = 0
    #: set by a link's corruption model; receivers checksum and discard
    corrupted: bool = False
    #: in-band telemetry: per-hop :class:`repro.obs.telemetry.HopRecord`
    #: stamps, appended by instrumented links and switch pipelines and
    #: drained (reset to None) at the frame's sink.  None unless a
    #: telemetry hub is installed -- the common case.
    hops: list | None = None

    def copy_for(self, dst: str) -> "Frame":
        """A replica of this frame addressed to ``dst`` (multicast copy).

        The message object is shared, not copied: the switch's traffic
        manager replicates frames, and replicas carry the same payload.
        Receivers must not mutate messages in place.  Replicas start
        with no telemetry stamps: each copy traverses its own downlink
        and accumulates its own hop records.
        """
        return Frame(
            wire_bytes=self.wire_bytes,
            message=self.message,
            src=self.src,
            dst=dst,
            flow_key=self.flow_key,
        )
