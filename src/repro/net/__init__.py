"""Network substrate: frames, links, hosts, and the switch chassis.

This package models the paper's testbed network -- a single rack of
workers star-connected to one programmable switch (and, for SS6, a
hierarchy of racks) -- at packet granularity:

* :mod:`repro.net.packet` -- wire frames and size accounting.  The paper's
  numbers (180-byte SwitchML frames carrying 128 B of payload, 28.9 %
  header overhead; 1516-byte MTU frames at 3.4 %) fall straight out of the
  constants here.
* :mod:`repro.net.loss` -- loss injection: Bernoulli (the paper's 0.01-1 %
  uniform random loss), Gilbert-Elliott bursts, and scripted drops used to
  replay the Appendix A execution trace.
* :mod:`repro.net.link` -- store-and-forward links with serialization
  delay, propagation delay, FIFO queueing, and optional buffer caps.
* :mod:`repro.net.host` -- end hosts with a configurable number of CPU
  cores (serial resources) and flow-director-style RX sharding.
* :mod:`repro.net.switchchassis` -- the switch box: ports, an ingress
  pipeline slot for a dataplane program, and a traffic manager that
  performs multicast replication (paper SS4: "the traffic manager
  duplicates the packet ... and performs a multicast").
* :mod:`repro.net.topology` -- builders for the single-rack star and the
  multi-rack hierarchy.
"""

from repro.net.host import Host, HostSpec
from repro.net.link import Link, LinkSpec
from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ScriptedLoss,
)
from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    MTU_FRAME_BYTES,
    SWITCHML_FRAME_BYTES,
    SWITCHML_HEADER_BYTES,
    Frame,
    elements_per_packet,
    frame_bytes_for_elements,
    goodput_fraction,
)
from repro.net.switchchassis import PortDecision, SwitchChassis
from repro.net.topology import (
    Rack,
    RackSpec,
    Tree,
    TreeRack,
    TreeSpec,
    attach_host,
    build_rack,
    build_tree,
    connect_switches,
)

__all__ = [
    "BernoulliLoss",
    "ETHERNET_OVERHEAD_BYTES",
    "Frame",
    "GilbertElliottLoss",
    "Host",
    "HostSpec",
    "Link",
    "LinkSpec",
    "LossModel",
    "MTU_FRAME_BYTES",
    "NoLoss",
    "PortDecision",
    "Rack",
    "RackSpec",
    "SWITCHML_FRAME_BYTES",
    "SWITCHML_HEADER_BYTES",
    "ScriptedLoss",
    "SwitchChassis",
    "Tree",
    "TreeRack",
    "TreeSpec",
    "attach_host",
    "build_rack",
    "build_tree",
    "connect_switches",
    "elements_per_packet",
    "frame_bytes_for_elements",
    "goodput_fraction",
]
