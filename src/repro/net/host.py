"""End hosts: CPU cores, NIC send/receive paths, flow-director sharding.

Worker machines in the paper run a DPDK program: incoming frames are
spread across RX queues by the NIC's Flow Director, each queue is pinned
to one core, and each core handles its share of pool slots with no shared
state (paper SS4 and Appendix B).  We model each core as a
:class:`~repro.sim.resources.SerialResource` charged a fixed CPU cost per
received and per transmitted frame.

Calibration
-----------
Default per-frame costs are 40 ns on each of the RX and TX paths.  With
180-byte frames:

* at 10 Gbps, line rate is ~6.9 Mpps; one core sustains 1 / 80 ns = 12.5 M
  frame-pairs/s -- comfortably line rate, matching the paper's "one CPU
  core is sufficient ... on a 10 Gbps network" (SSB);
* at 100 Gbps, line rate is ~69 Mpps; four cores sustain ~50 M pairs/s,
  i.e. ~72 % of line rate -- reproducing the "penalty gap at 100 Gbps"
  from the paper's 4-core Flow Director limitation (SS5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Protocol

from repro.net.link import Link
from repro.net.packet import Frame
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource

__all__ = ["Host", "HostSpec", "HostAgent"]

#: sort key for (submit_time, frame) pairs (stable: ties keep charge order)
_submit_key = itemgetter(0)


@dataclass
class HostSpec:
    """CPU and I/O model of a worker machine.

    The paper uses 4 cores per worker at both speeds (SS5.1).

    ``io_fixed_latency_s`` + ``io_batch_frames`` model DPDK's batched I/O:
    "packets are batched in groups of 32 to reduce per-packet transmission
    overhead" (SSB).  A frame waits, on average, for half a batch's worth
    of serialization time plus a fixed driver cost before it is visible to
    software (RX) or to the wire (TX).  This latency -- not the per-frame
    CPU cost -- dominates the end-to-end delay that sets the BDP, and
    therefore the pool-size knee of Figure 2: at 10 Gbps the modelled
    round trip is ~11 us, matching the paper's choice of s = 128.
    """

    num_cores: int = 4
    per_frame_rx_s: float = 40e-9
    per_frame_tx_s: float = 40e-9
    io_fixed_latency_s: float = 2e-6
    io_batch_frames: int = 16

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("a host needs at least one core")
        if self.per_frame_rx_s < 0 or self.per_frame_tx_s < 0:
            raise ValueError("per-frame CPU costs must be non-negative")
        if self.io_fixed_latency_s < 0 or self.io_batch_frames < 0:
            raise ValueError("I/O latency parameters must be non-negative")


class HostAgent(Protocol):
    """A protocol endpoint running on a host (worker, PS shard, ...)."""

    def on_frame(self, frame: Frame) -> None:
        """Handle one received frame; runs on the frame's RX core."""
        ...  # pragma: no cover - protocol


class Host:
    """A machine with cores and one bidirectional network attachment.

    The uplink (host -> switch) is assigned by the topology builder; the
    downlink terminates at :meth:`deliver`, which charges the RX core and
    dispatches to the attached agent.
    """

    def __init__(self, sim: Simulator, name: str, spec: HostSpec | None = None):
        self.sim = sim
        self.name = name
        self._schedule_call_at = sim.schedule_call_at
        # cache key + table for the per-frame-size I/O latency (see
        # `_io_latency`): [host spec, uplink spec, {wire_bytes: latency}]
        self._lat_cache: list = [None, None, {}]
        # `spec` is a property: callers replace the whole object (never
        # mutate fields), and the setter refreshes the per-frame costs
        self.spec = spec if spec is not None else HostSpec()
        self.cores = [
            SerialResource(sim, name=f"{name}/core{i}")
            for i in range(self.spec.num_cores)
        ]
        self._ncores = len(self.cores)
        self.uplink: Link | None = None
        self.agent: HostAgent | None = None
        self._agent_on_frames: Callable[[list[Frame]], Any] | None = None
        self.frames_received = 0
        self.frames_sent = 0
        # burst-granularity RX: frames whose dispatch time coincides
        # buffered for one agent callback (open run + its timestamp)
        self._rx_group: list | None = None
        self._rx_t = -1.0
        #: epsilon-window coalescing (burst mode only, set by the job):
        #: dispatches within ``[t0, t0 + eps]`` of the group opener join
        #: one agent callback at ``t0 + eps``; zero keeps exact
        #: same-timestamp coalescing (bit-identical to packet mode)
        self.burst_epsilon = 0.0
        #: optional hook (frame, "rx"|"tx", time) for tracing
        self.observer: Callable[[Frame, str, float], Any] | None = None
        #: in-band telemetry sink (repro.obs.telemetry.TelemetryCollector),
        #: installed by Telemetry.instrument_host; frames arriving with
        #: hop records are drained here at dispatch
        self.telemetry: Any | None = None

    @property
    def spec(self) -> HostSpec:
        return self._spec

    @spec.setter
    def spec(self, spec: HostSpec) -> None:
        self._spec = spec
        self._rx_cost = spec.per_frame_rx_s
        self._tx_cost = spec.per_frame_tx_s

    def attach_agent(self, agent: HostAgent) -> None:
        self.agent = agent
        self._agent_on_frames = getattr(agent, "on_frames", None)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _io_latency(self, frame: Frame) -> float:
        """DPDK batching latency for one frame at the attached link rate.

        The batch term scales with the frame's serialization time, capped
        at MTU size: aggregate messages (e.g. ring all-reduce chunks) are
        streams of MTU frames on the real wire, and batching delays a
        frame by at most a batch of MTU frames.

        The value depends only on the frame size and the (host spec,
        uplink spec) pair, so it is memoized per size; replacing either
        spec object invalidates the table.
        """
        uplink = self.uplink
        spec = self._spec
        if uplink is None:
            return spec.io_fixed_latency_s
        cache = self._lat_cache
        link_spec = uplink._spec
        if cache[0] is not spec or cache[1] is not link_spec:
            cache[0] = spec
            cache[1] = link_spec
            cache[2] = {}
        wire_bytes = frame.wire_bytes
        latency = cache[2].get(wire_bytes)
        if latency is None:
            batch_s = spec.io_batch_frames * link_spec.serialization_s(
                min(wire_bytes, 1516)
            )
            latency = spec.io_fixed_latency_s + batch_s
            cache[2][wire_bytes] = latency
        return latency

    def deliver(self, frame: Frame) -> None:
        """Downlink terminus: shard onto a core, charge RX cost, dispatch.

        Dispatch is delayed by the I/O batching latency; the core is only
        occupied for the per-frame processing cost.  This runs once per
        received frame, so the :meth:`SerialResource.submit` arithmetic
        and the latency-cache hit are inlined (the accounting matches
        ``submit`` exactly).
        """
        core = self.cores[frame.flow_key % self._ncores]
        uplink = self.uplink
        cache = self._lat_cache
        if uplink is not None and cache[0] is self._spec and cache[1] is uplink._spec:
            latency = cache[2].get(frame.wire_bytes)
            if latency is None:
                latency = self._io_latency(frame)
        else:
            latency = self._io_latency(frame)
        sim = self.sim
        now = sim.now
        busy = core.busy_until
        cost = self._rx_cost
        finish = (busy if busy > now else now) + cost
        core.busy_until = finish
        core.jobs_served += 1
        core.busy_time += cost
        # completion events are never cancelled: handle-free fast path
        self._schedule_call_at(finish + latency, self._dispatch, frame)

    def _dispatch(self, frame: Frame) -> None:
        if self.agent is None:
            raise RuntimeError(f"host {self.name} received a frame but has no agent")
        self.frames_received += 1
        if self.observer is not None:
            self.observer(frame, "rx", self.sim.now)
        if frame.hops is not None and self.telemetry is not None:
            self.telemetry.drain(frame, self.sim.now, sink=self.name)
        self.agent.on_frame(frame)

    def core_for(self, flow_key: int) -> SerialResource:
        """Flow-director sharding: stable key -> core mapping."""
        return self.cores[flow_key % len(self.cores)]

    # ------------------------------------------------------------------
    # Burst-granularity receive path
    # ------------------------------------------------------------------
    def deliver_burst(self, frame: Frame) -> None:
        """Burst-mode downlink terminus: identical core accounting to
        :meth:`deliver`, but frames whose dispatch times coincide are
        buffered under that timestamp and handed to the agent in one
        ``on_frames`` call (DPDK's RX burst).  Wired instead of
        :meth:`deliver` by the job when ``granularity="burst"``; the
        packet-mode path carries no extra branch.
        """
        core = self.cores[frame.flow_key % self._ncores]
        uplink = self.uplink
        cache = self._lat_cache
        if uplink is not None and cache[0] is self._spec and cache[1] is uplink._spec:
            latency = cache[2].get(frame.wire_bytes)
            if latency is None:
                latency = self._io_latency(frame)
        else:
            latency = self._io_latency(frame)
        sim = self.sim
        now = sim.now
        busy = core.busy_until
        cost = self._rx_cost
        finish = (busy if busy > now else now) + cost
        core.busy_until = finish
        core.jobs_served += 1
        core.busy_time += cost
        # run detection (see Link.send's burst branch): coinciding
        # dispatch times extend the open group; a nonzero per-frame RX
        # cost spaces same-core frames apart, so ties only form across
        # cores or with a zero-cost spec -- missing one costs an event,
        # not correctness
        t = finish + latency
        eps = self.burst_epsilon
        if eps > 0.0:
            # epsilon window: dispatches in [t0, t0 + eps] of the open
            # group join its drain (scheduled at t0 + eps); the drain
            # clears the group ref so late frames open a fresh window
            group = self._rx_group
            t0 = self._rx_t
            if group is not None and t0 <= t <= t0 + eps:
                group.append((t, frame))
            else:
                self._rx_group = group = [(t, frame)]
                self._rx_t = t
                self._schedule_call_at(t + eps, self._dispatch_window, group)
            return
        group = self._rx_group
        if group is not None and t == self._rx_t:
            group.append(frame)
        else:
            self._rx_group = group = [frame]
            self._rx_t = t
            self._schedule_call_at(t, self._dispatch_burst, group)

    def _dispatch_burst(self, frames: list[Frame]) -> None:
        """Hand one coinciding-dispatch group to the agent.

        Per-frame bookkeeping (counters, observer) matches
        :meth:`_dispatch`; agents without ``on_frames`` get the frames
        one at a time in the same order packet mode would deliver them
        (identical dispatch time, FIFO by arrival).
        """
        agent = self.agent
        if agent is None:
            raise RuntimeError(f"host {self.name} received a frame but has no agent")
        if frames is self._rx_group:
            self._rx_group = None
        self.frames_received += len(frames)
        observer = self.observer
        if observer is not None:
            now = self.sim.now
            for frame in frames:
                observer(frame, "rx", now)
        telemetry = self.telemetry
        if telemetry is not None:
            now = self.sim.now
            name = self.name
            for frame in frames:
                if frame.hops is not None:
                    telemetry.drain(frame, now, sink=name)
        on_frames = self._agent_on_frames
        if on_frames is not None:
            on_frames(frames)
        else:
            on_frame = agent.on_frame
            for frame in frames:
                on_frame(frame)

    def _dispatch_window(self, pairs: list[tuple[float, Frame]]) -> None:
        """Hand one epsilon-window group to the agent at ``t0 + eps``,
        in dispatch order (stable sort keeps arrival order for ties)."""
        if pairs is self._rx_group:
            self._rx_group = None
        pairs.sort(key=lambda p: p[0])
        self._dispatch_burst([frame for _, frame in pairs])

    def deliver_burst_many(self, frames: list[Frame]) -> None:
        """Batched :meth:`deliver_burst`: one call per link drain group.

        Wired as the downlink's ``deliver_many`` callback.  Behaviorally
        identical to calling :meth:`deliver_burst` once per frame in
        order -- no event fires between the iterations, so the core
        accounting, RX-group membership, and scheduled drains come out
        the same; the loop just hoists the per-frame attribute lookups
        and the callback invocation itself.
        """
        cores = self.cores
        ncores = self._ncores
        uplink = self.uplink
        cache = self._lat_cache
        lat_map = (
            cache[2]
            if uplink is not None
            and cache[0] is self._spec
            and cache[1] is uplink._spec
            else None
        )
        io_latency = self._io_latency
        now = self.sim.now
        cost = self._rx_cost
        eps = self.burst_epsilon
        schedule = self._schedule_call_at
        group = self._rx_group
        t0 = self._rx_t
        for frame in frames:
            core = cores[frame.flow_key % ncores]
            if lat_map is not None:
                latency = lat_map.get(frame.wire_bytes)
                if latency is None:
                    latency = io_latency(frame)
            else:
                latency = io_latency(frame)
            busy = core.busy_until
            finish = (busy if busy > now else now) + cost
            core.busy_until = finish
            core.jobs_served += 1
            core.busy_time += cost
            t = finish + latency
            if eps > 0.0:
                if group is not None and t0 <= t <= t0 + eps:
                    group.append((t, frame))
                else:
                    group = [(t, frame)]
                    t0 = t
                    self._rx_group = group
                    self._rx_t = t0
                    schedule(t + eps, self._dispatch_window, group)
                continue
            if group is not None and t == t0:
                group.append(frame)
            else:
                group = [frame]
                t0 = t
                self._rx_group = group
                self._rx_t = t0
                schedule(t, self._dispatch_burst, group)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, frame: Frame, flow_key: int | None = None) -> None:
        """Charge the TX core for ``frame`` and put it on the uplink.

        ``flow_key`` defaults to the frame's own flow key so that a slot's
        TX work lands on the same core as its RX work (run-to-completion).
        """
        uplink = self.uplink
        if uplink is None:
            raise RuntimeError(f"host {self.name} has no uplink")
        key = frame.flow_key if flow_key is None else flow_key
        core = self.cores[key % self._ncores]
        self.frames_sent += 1
        if self.observer is not None:
            self.observer(frame, "tx", self.sim.now)
        # inlined SerialResource.submit + latency-cache hit (see deliver)
        cache = self._lat_cache
        if cache[0] is self._spec and cache[1] is uplink._spec:
            latency = cache[2].get(frame.wire_bytes)
            if latency is None:
                latency = self._io_latency(frame)
        else:
            latency = self._io_latency(frame)
        sim = self.sim
        now = sim.now
        busy = core.busy_until
        cost = self._tx_cost
        finish = (busy if busy > now else now) + cost
        core.busy_until = finish
        core.jobs_served += 1
        core.busy_time += cost
        self._schedule_call_at(finish + latency, uplink.send, frame)

    def send_train(self, frames: list[Frame]) -> None:
        """Charge TX cores for a batch and put it on the uplink as one
        frame train: one cursor entry replaces one event per frame.

        The core accounting is identical to ``len(frames)`` back-to-back
        :meth:`send` calls from the same callback (those all charge at
        the same ``sim.now``); each frame's link submit time
        (``finish + latency``) rides inside the train, and
        :meth:`~repro.net.link.Link.send_train` replays every frame at
        its own submit time.  Submit times can run backwards across
        cores (a busy core finishes later than an idle one charged
        after it); the stable sort restores the ``(time, seq)`` order
        the per-frame TX events would have fired in.

        The link call happens *inside this event*, not at the first
        submit time: the per-frame path schedules all its TX entries
        right here, so their tie-breaking sequence numbers date from
        this event -- and the train's dispatch cursor must be created
        now to inherit exactly that position (see
        :meth:`~repro.sim.engine.Simulator.schedule_train`).
        """
        n = len(frames)
        if n == 0:
            return
        if n == 1:
            self.send(frames[0])
            return
        uplink = self.uplink
        if uplink is None:
            raise RuntimeError(f"host {self.name} has no uplink")
        now = self.sim.now
        observer = self.observer
        cores = self.cores
        ncores = self._ncores
        cost = self._tx_cost
        cache = self._lat_cache
        if cache[0] is not self._spec or cache[1] is not uplink._spec:
            self._io_latency(frames[0])  # prime/refresh the size table
        table = cache[2]
        self.frames_sent += n
        pairs: list[tuple[float, Frame]] = []
        monotone = True
        last = -1.0
        for frame in frames:
            if observer is not None:
                observer(frame, "tx", now)
            core = cores[frame.flow_key % ncores]
            busy = core.busy_until
            finish = (busy if busy > now else now) + cost
            core.busy_until = finish
            core.jobs_served += 1
            core.busy_time += cost
            latency = table.get(frame.wire_bytes)
            if latency is None:
                latency = self._io_latency(frame)
            t = finish + latency
            if t < last:
                monotone = False
            last = t
            pairs.append((t, frame))
        if not monotone:
            pairs.sort(key=_submit_key)
        uplink.send_train(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} cores={len(self.cores)}>"
