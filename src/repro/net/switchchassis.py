"""The switch box: ports, an ingress-pipeline program slot, and a
traffic manager that replicates multicast frames.

The chassis is deliberately dumb: all protocol intelligence lives in the
attached *dataplane program* (e.g. :class:`repro.core.switch_program.
SwitchMLProgram` or the plain :class:`ForwardingProgram`).  This mirrors
the Tofino split between the fixed chassis (ports, traffic manager) and
the P4 program loaded into the pipeline.

Timing model: a frame arriving on any port is processed after a fixed
``pipeline_latency_s`` (Tofino ingress latency is under a microsecond and
independent of load -- the ASIC is non-blocking at line rate), and output
frames are handed to the per-port egress links, which serialize.  The
traffic manager performs multicast replication at no extra cost, as on
the real ASIC (paper SSB: using the traffic manager for duplication was
precisely what let the authors keep everything in one ingress pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.net.link import Link
from repro.net.packet import Frame
from repro.sim.engine import Simulator

__all__ = ["DataplaneProgram", "ForwardingProgram", "PortDecision", "SwitchChassis"]


@dataclass
class PortDecision:
    """What the program wants done with a processed frame.

    ``deliveries`` is a list of ``(port, frame)`` pairs; an empty list is a
    drop.  A multicast is simply many deliveries sharing one message
    object.
    """

    deliveries: list[tuple[int, Frame]]

    @classmethod
    def drop(cls) -> "PortDecision":
        """The shared drop decision (callers never mutate ``deliveries``;
        allocating one per dropped frame would tax the inner loop)."""
        return _DROP


#: singleton returned by :meth:`PortDecision.drop`
_DROP = PortDecision(deliveries=[])


class DataplaneProgram(Protocol):
    """The interface a pipeline program exposes to the chassis."""

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        """Process one ingress frame; runs at most once per frame."""
        ...  # pragma: no cover - protocol


class ForwardingProgram:
    """Plain destination-based forwarding (a normal Ethernet switch).

    Used as the dataplane when benchmarking host-based strategies
    (parameter servers, ring all-reduce) over the same simulated rack.
    """

    def __init__(self, port_of: dict[str, int]):
        self.port_of = dict(port_of)

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        port = self.port_of.get(frame.dst)
        if port is None:
            return PortDecision.drop()
        return PortDecision(deliveries=[(port, frame)])


class SwitchChassis:
    """A multi-port switch with one ingress pipeline.

    Parameters
    ----------
    sim:
        Simulation engine.
    name:
        Stats / debugging label.
    pipeline_latency_s:
        Fixed ingress processing latency per frame (default 800 ns,
        within Tofino's published sub-microsecond range).
    """

    def __init__(self, sim: Simulator, name: str = "sw", pipeline_latency_s: float = 800e-9):
        self.sim = sim
        self.name = name
        self.pipeline_latency_s = pipeline_latency_s
        self.program: DataplaneProgram | None = None
        self._egress: dict[int, Link] = {}
        # per-port Link list (index = port number) for the egress fan-out;
        # rebuilt by attach_port, None-padded for unattached ports
        self._egress_list: list[Link | None] = []
        self._schedule_call = sim.schedule_call
        self.frames_in = 0
        self.frames_out = 0
        self.frames_dropped = 0
        # burst-granularity ingress: frames arriving at the same instant
        # buffered for one pipeline drain (open run + its timestamp);
        # engine time is monotone, so run detection groups ties exactly
        self._in_group: list[tuple[Frame, int]] | None = None
        self._in_t = -1.0
        #: epsilon-window coalescing (burst mode only, set by the job):
        #: arrivals within ``[t0, t0 + eps]`` of the group opener share
        #: one pipeline drain at ``t0 + eps + pipeline_latency_s``; zero
        #: keeps exact same-instant grouping (bit-identical to packet
        #: mode).  Engine time is monotone at ingress, so within-group
        #: arrival order needs no sort either way.
        self.burst_epsilon = 0.0
        #: frame-train egress (set by the job alongside burst wiring):
        #: a burst drain's deliveries are grouped per egress port and
        #: leave through one :meth:`Link.send_train` call per port --
        #: every frame submits at the drain's ``sim.now``, exactly when
        #: the per-frame loop would have called ``send``, so per-link
        #: frame order, busy chains, and RNG draw order are unchanged
        self.train_egress = False
        #: longest per-port train sent in one piece; 0 = unlimited
        self.train_cap = 0
        # the loaded program's batch entry point, cached by load_program
        self._process_batch: Callable | None = None
        #: in-band telemetry tap (repro.obs.telemetry.ChassisTap),
        #: installed by Telemetry.instrument_chassis; stamps pool
        #: occupancy on ingress frames and drains the ones the pipeline
        #: terminates (aggregated, punted, fenced)
        self.telemetry: Any | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_port(self, port: int, egress: Link) -> None:
        """Connect the egress side of ``port`` to a link."""
        if port in self._egress:
            raise ValueError(f"{self.name}: port {port} already attached")
        self._egress[port] = egress
        if port >= len(self._egress_list):
            self._egress_list.extend([None] * (port + 1 - len(self._egress_list)))
        self._egress_list[port] = egress

    def load_program(self, program: DataplaneProgram) -> None:
        self.program = program
        self._process_batch = getattr(program, "process_batch", None)

    @property
    def ports(self) -> list[int]:
        return sorted(self._egress)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def ingress(self, frame: Frame, in_port: int) -> None:
        """Entry point wired as the uplink's deliver callback."""
        if self.program is None:
            raise RuntimeError(f"{self.name}: no dataplane program loaded")
        self.frames_in += 1
        # pipeline completions are never cancelled: handle-free fast path
        self._schedule_call(
            self.pipeline_latency_s, self._run_pipeline, frame, in_port
        )

    def _run_pipeline(self, frame: Frame, in_port: int) -> None:
        tap = self.telemetry
        if tap is not None:
            tap.stamp(frame)
        deliveries = self.program.process(frame, in_port).deliveries
        if not deliveries:
            self.frames_dropped += 1
            if tap is not None and frame.hops is not None:
                tap.absorb(frame)
            return
        egress_list = self._egress_list
        nports = len(egress_list)
        self.frames_out += len(deliveries)
        for port, out_frame in deliveries:
            egress = egress_list[port] if 0 <= port < nports else None
            if egress is None:
                raise RuntimeError(f"{self.name}: no egress link on port {port}")
            egress.send(out_frame)
        if tap is not None and frame.hops is not None:
            # a frame absorbed by the program (its deliveries are new
            # frames, e.g. an aggregation emitting partials) terminates
            # here; one forwarded as-is keeps accumulating stamps
            for _port, out_frame in deliveries:
                if out_frame is frame:
                    break
            else:
                tap.absorb(frame)

    def ingress_callback(self, in_port: int):
        """A ``deliver(frame)`` closure bound to ``in_port``.

        The closure repeats :meth:`ingress` rather than calling it -- it
        runs once per frame entering the switch, and the extra call frame
        was measurable on the aggregation hot path.
        """
        schedule_call = self._schedule_call
        run_pipeline = self._run_pipeline

        def deliver(frame: Frame) -> None:
            if self.program is None:
                raise RuntimeError(f"{self.name}: no dataplane program loaded")
            self.frames_in += 1
            schedule_call(self.pipeline_latency_s, run_pipeline, frame, in_port)

        return deliver

    # ------------------------------------------------------------------
    # Burst granularity
    # ------------------------------------------------------------------
    def burst_ingress_callback(self, in_port: int):
        """Burst-granularity ``deliver(frame)`` closure for ``in_port``.

        Frames arriving at the same instant -- across *all* ports -- are
        buffered under their exact arrival timestamp, and one pipeline
        drain event (scheduled by the first arrival of the group) hands
        the whole group to the program at ``t + pipeline_latency_s``:
        the same time each frame's individual pipeline completion would
        have fired in packet mode, with within-group arrival order
        preserved.  Wired instead of :meth:`ingress_callback` by the job
        when ``granularity="burst"`` so the packet-mode path carries no
        extra branch.
        """
        sim = self.sim
        schedule_call = self._schedule_call

        def deliver(frame: Frame) -> None:
            if self.program is None:
                raise RuntimeError(f"{self.name}: no dataplane program loaded")
            self.frames_in += 1
            t = sim.now
            eps = self.burst_epsilon
            group = self._in_group
            if eps > 0.0:
                # epsilon window: arrivals in [t0, t0 + eps] of the open
                # group ride its drain (already scheduled at t0 + eps +
                # pipeline latency); the drain clears the group ref
                if group is not None and self._in_t <= t <= self._in_t + eps:
                    group.append((frame, in_port))
                else:
                    self._in_group = group = [(frame, in_port)]
                    self._in_t = t
                    schedule_call(
                        eps + self.pipeline_latency_s,
                        self._run_pipeline_burst,
                        group,
                    )
                return
            if group is not None and t == self._in_t:
                group.append((frame, in_port))
            else:
                self._in_group = group = [(frame, in_port)]
                self._in_t = t
                schedule_call(
                    self.pipeline_latency_s, self._run_pipeline_burst, group
                )

        return deliver

    def burst_ingress_many_callback(self, in_port: int):
        """Batched companion to :meth:`burst_ingress_callback`.

        Wired as the uplink's ``deliver_many``: one call takes a whole
        link drain group, all sharing the drain's ``sim.now``.  Because
        the timestamps are identical, replaying the per-frame closure
        would test the group window once and then append -- this does
        exactly that, without the per-frame calls, so group membership
        and drain scheduling are unchanged.
        """
        sim = self.sim
        schedule_call = self._schedule_call

        def deliver_many(frames: list[Frame]) -> None:
            if self.program is None:
                raise RuntimeError(f"{self.name}: no dataplane program loaded")
            self.frames_in += len(frames)
            t = sim.now
            eps = self.burst_epsilon
            group = self._in_group
            if eps > 0.0:
                if group is not None and self._in_t <= t <= self._in_t + eps:
                    group.extend((frame, in_port) for frame in frames)
                else:
                    self._in_group = group = [(frame, in_port) for frame in frames]
                    self._in_t = t
                    schedule_call(
                        eps + self.pipeline_latency_s,
                        self._run_pipeline_burst,
                        group,
                    )
                return
            if group is not None and t == self._in_t:
                group.extend((frame, in_port) for frame in frames)
            else:
                self._in_group = group = [(frame, in_port) for frame in frames]
                self._in_t = t
                schedule_call(
                    self.pipeline_latency_s, self._run_pipeline_burst, group
                )

        return deliver_many

    def _run_pipeline_burst(self, group: list[tuple[Frame, int]]) -> None:
        """Drain one simultaneous-arrival group through the pipeline.

        Programs exposing ``process_batch`` (the SwitchML dataplane) get
        the whole group at once; others fall back to per-frame
        :meth:`_run_pipeline` calls, which at this point differ from
        packet mode only in having shared one engine event.
        """
        if group is self._in_group:
            self._in_group = None
        process_batch = self._process_batch
        if process_batch is None:
            for frame, in_port in group:
                self._run_pipeline(frame, in_port)
            return
        tap = self.telemetry
        if tap is not None:
            for frame, _port in group:
                tap.stamp(frame)
        decisions = process_batch(group)
        # each returned decision carries the deliveries triggered by one
        # emitting frame; every other frame of the group was absorbed
        self.frames_dropped += len(group) - len(decisions)
        egress_list = self._egress_list
        nports = len(egress_list)
        forwarded: set[int] | None = set() if tap is not None else None
        if self.train_egress:
            # Group the drain's deliveries per egress port and run each
            # port's send bodies as one batch (identical per-link frame
            # order to the per-frame loop -- the port-major processing
            # only batches disjoint links).  Dispatch, however, must
            # happen in the original cross-link delivery order: arrival
            # entries for different downlinks can tie at the same
            # instant, and their creation order is the tie-break the
            # per-frame loop would have produced.
            now = self.sim.now
            by_port: dict[int, list[tuple[float, Frame]]] = {}
            # when every egress link runs an epsilon window, appends to
            # different links' windows commute -- the cross-link
            # delivery order never needs replaying, so skip recording it
            eps_fast = all(
                e is None or (e.burst and e.burst_epsilon > 0.0)
                for e in egress_list
            )
            order: list[int] | None = None if eps_fast else []
            for decision in decisions:
                deliveries = decision.deliveries
                self.frames_out += len(deliveries)
                for port, out_frame in deliveries:
                    if forwarded is not None:
                        forwarded.add(id(out_frame))
                    if order is not None:
                        order.append(port)
                    pairs = by_port.get(port)
                    if pairs is None:
                        by_port[port] = [(now, out_frame)]
                    else:
                        pairs.append((now, out_frame))
            cap = self.train_cap
            for port in by_port:
                egress = egress_list[port] if 0 <= port < nports else None
                if egress is None:
                    raise RuntimeError(
                        f"{self.name}: no egress link on port {port}"
                    )
            if eps_fast:
                # each port's whole batch folds into its link's window
                # with no cross-link interleaving; send_train takes the
                # fused body+fold path on clean links
                for port, pairs in by_port.items():
                    egress = egress_list[port]
                    if cap and len(pairs) > cap:
                        for s0 in range(0, len(pairs), cap):
                            egress.send_train(pairs[s0 : s0 + cap])
                    else:
                        egress.send_train(pairs)
            else:
                cursors: dict[int, Any] = {}
                for port, pairs in by_port.items():
                    egress = egress_list[port]
                    if cap and len(pairs) > cap:
                        records: list = []
                        for s0 in range(0, len(pairs), cap):
                            records.extend(
                                egress.send_bodies(pairs[s0 : s0 + cap])[0]
                            )
                    else:
                        records = egress.send_bodies(pairs)[0]
                    cursors[port] = iter(records)
                for port in order:
                    rec = next(cursors[port])
                    if rec is not None:
                        # all submits are at this drain's instant, so the
                        # dispatch runs inline (same as the per-frame
                        # tail)
                        egress_list[port]._dispatch_one(rec)
        else:
            for decision in decisions:
                deliveries = decision.deliveries
                self.frames_out += len(deliveries)
                for port, out_frame in deliveries:
                    egress = egress_list[port] if 0 <= port < nports else None
                    if egress is None:
                        raise RuntimeError(
                            f"{self.name}: no egress link on port {port}"
                        )
                    if forwarded is not None:
                        forwarded.add(id(out_frame))
                    egress.send(out_frame)
        if tap is not None:
            for frame, _port in group:
                if frame.hops is not None and id(frame) not in forwarded:
                    tap.absorb(frame)
