"""Topology builders: the single-rack star and multi-rack trees.

The paper's deployment (SS5.1) is a rack: every worker has one cable to
the programmable ToR switch.  :func:`build_rack` wires that up --
per-worker uplink and downlink links, each with its own loss model
instance (the paper injects loss "on every link") and its own RNG
substream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.host import Host, HostSpec
from repro.net.link import Link, LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.net.switchchassis import SwitchChassis
from repro.sim.engine import Simulator

__all__ = ["Rack", "RackSpec", "build_rack"]


@dataclass
class RackSpec:
    """Everything needed to instantiate a rack.

    ``loss_factory`` builds a fresh loss-model instance per link so that
    stateful models (Gilbert-Elliott, scripted) do not share state across
    links.
    """

    num_hosts: int = 8
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    pipeline_latency_s: float = 800e-9
    loss_factory: Callable[[], LossModel] = NoLoss
    host_name_prefix: str = "w"


@dataclass
class Rack:
    """A built rack: hosts star-connected to one switch."""

    sim: Simulator
    switch: SwitchChassis
    hosts: list[Host]
    uplinks: list[Link]
    downlinks: list[Link]

    def host_port(self, index: int) -> int:
        """Switch port number of host ``index`` (identity mapping)."""
        return index

    def port_map(self) -> dict[str, int]:
        """host name -> switch port, for forwarding programs."""
        return {host.name: i for i, host in enumerate(self.hosts)}

    def total_frames_lost(self) -> int:
        return sum(l.stats.frames_lost for l in self.uplinks + self.downlinks)

    def conservation_holds(self) -> bool:
        """Every link satisfies sent == delivered + lost (once idle)."""
        return all(
            l.stats.conservation_holds() for l in self.uplinks + self.downlinks
        )


def build_rack(sim: Simulator, spec: RackSpec) -> Rack:
    """Instantiate hosts, switch, and both link directions per host.

    Port ``i`` of the switch connects to host ``i``.  The caller still has
    to load a dataplane program into ``rack.switch`` and attach agents to
    the hosts.
    """
    if spec.num_hosts < 1:
        raise ValueError("a rack needs at least one host")

    switch = SwitchChassis(sim, name="sw", pipeline_latency_s=spec.pipeline_latency_s)
    hosts: list[Host] = []
    uplinks: list[Link] = []
    downlinks: list[Link] = []

    for i in range(spec.num_hosts):
        host = Host(sim, name=f"{spec.host_name_prefix}{i}", spec=spec.host)
        uplink = Link(
            sim,
            spec.link,
            name=f"{host.name}->sw",
            deliver=switch.ingress_callback(i),
            loss=spec.loss_factory(),
        )
        downlink = Link(
            sim,
            spec.link,
            name=f"sw->{host.name}",
            deliver=host.deliver,
            loss=spec.loss_factory(),
        )
        host.uplink = uplink
        switch.attach_port(i, downlink)
        hosts.append(host)
        uplinks.append(uplink)
        downlinks.append(downlink)

    return Rack(sim=sim, switch=switch, hosts=hosts, uplinks=uplinks, downlinks=downlinks)
