"""Topology builders: the single-rack star, multi-rack trees, and the
low-level wiring helpers every multi-switch layout shares.

The paper's deployment (SS5.1) is a rack: every worker has one cable to
the programmable ToR switch.  :func:`build_rack` wires that up --
per-worker uplink and downlink links, each with its own loss model
instance (the paper injects loss "on every link") and its own RNG
substream.

SS6 composes racks into a tree, and :mod:`repro.net.fabric` composes
leaves and spines into a Clos; both build on the same two primitives
here rather than re-implementing the wiring:

* :func:`attach_host` -- one host, one switch port, both cable
  directions;
* :func:`connect_switches` -- a switch-to-switch trunk, both directions.

Link names are canonical (``a->b``) and double as the RNG substream
keys, so a topology's randomness is a function of its names, not of the
order in which its links were constructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.net.host import Host, HostSpec
from repro.net.link import Link, LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.net.switchchassis import SwitchChassis
from repro.sim.engine import Simulator

__all__ = [
    "Rack",
    "RackSpec",
    "Tree",
    "TreeRack",
    "TreeSpec",
    "attach_host",
    "build_rack",
    "build_tree",
    "connect_switches",
]


@dataclass
class RackSpec:
    """Everything needed to instantiate a rack.

    ``loss_factory`` builds a fresh loss-model instance per link so that
    stateful models (Gilbert-Elliott, scripted) do not share state across
    links.
    """

    num_hosts: int = 8
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    pipeline_latency_s: float = 800e-9
    loss_factory: Callable[[], LossModel] = NoLoss
    host_name_prefix: str = "w"


@dataclass
class Rack:
    """A built rack: hosts star-connected to one switch."""

    sim: Simulator
    switch: SwitchChassis
    hosts: list[Host]
    uplinks: list[Link]
    downlinks: list[Link]

    def host_port(self, index: int) -> int:
        """Switch port number of host ``index`` (identity mapping)."""
        return index

    def port_map(self) -> dict[str, int]:
        """host name -> switch port, for forwarding programs."""
        return {host.name: i for i, host in enumerate(self.hosts)}

    def total_frames_lost(self) -> int:
        return sum(l.stats.frames_lost for l in self.uplinks + self.downlinks)

    def conservation_holds(self) -> bool:
        """Every link satisfies sent == delivered + lost (once idle)."""
        return all(
            l.stats.conservation_holds() for l in self.uplinks + self.downlinks
        )


def attach_host(
    sim: Simulator,
    switch: SwitchChassis,
    port: int,
    name: str,
    host_spec: HostSpec | None = None,
    link_spec: LinkSpec | None = None,
    loss_factory: Callable[[], LossModel] = NoLoss,
) -> tuple[Host, Link, Link]:
    """Wire one host to one switch port, both cable directions.

    The uplink (``host->switch``) delivers into the switch's ingress
    pipeline for ``port``; the downlink (``switch->host``) is attached as
    the port's egress.  Each direction gets its own loss-model instance
    and -- because substreams are keyed by link name -- its own RNG.
    Returns ``(host, uplink, downlink)``.
    """
    host_spec = host_spec if host_spec is not None else HostSpec()
    link_spec = link_spec if link_spec is not None else LinkSpec()
    host = Host(sim, name=name, spec=host_spec)
    uplink = Link(
        sim,
        link_spec,
        name=f"{host.name}->{switch.name}",
        deliver=switch.ingress_callback(port),
        loss=loss_factory(),
    )
    downlink = Link(
        sim,
        link_spec,
        name=f"{switch.name}->{host.name}",
        deliver=host.deliver,
        loss=loss_factory(),
    )
    host.uplink = uplink
    switch.attach_port(port, downlink)
    return host, uplink, downlink


def connect_switches(
    sim: Simulator,
    lower: SwitchChassis,
    lower_port: int,
    upper: SwitchChassis,
    upper_port: int,
    link_spec: LinkSpec | None = None,
    loss_factory: Callable[[], LossModel] = NoLoss,
) -> tuple[Link, Link]:
    """Trunk two switches together, both directions.

    ``lower_port`` is the uplink-facing port on ``lower`` (egress toward
    ``upper``); ``upper_port`` is the downlink-facing port on ``upper``.
    Returns ``(uplink, downlink)`` where the uplink carries
    lower-to-upper traffic.
    """
    link_spec = link_spec if link_spec is not None else LinkSpec()
    uplink = Link(
        sim,
        link_spec,
        name=f"{lower.name}->{upper.name}",
        deliver=upper.ingress_callback(upper_port),
        loss=loss_factory(),
    )
    downlink = Link(
        sim,
        link_spec,
        name=f"{upper.name}->{lower.name}",
        deliver=lower.ingress_callback(lower_port),
        loss=loss_factory(),
    )
    lower.attach_port(lower_port, uplink)
    upper.attach_port(upper_port, downlink)
    return uplink, downlink


def build_rack(sim: Simulator, spec: RackSpec) -> Rack:
    """Instantiate hosts, switch, and both link directions per host.

    Port ``i`` of the switch connects to host ``i``.  The caller still has
    to load a dataplane program into ``rack.switch`` and attach agents to
    the hosts.
    """
    if spec.num_hosts < 1:
        raise ValueError("a rack needs at least one host")

    switch = SwitchChassis(sim, name="sw", pipeline_latency_s=spec.pipeline_latency_s)
    hosts: list[Host] = []
    uplinks: list[Link] = []
    downlinks: list[Link] = []

    for i in range(spec.num_hosts):
        host, uplink, downlink = attach_host(
            sim,
            switch,
            port=i,
            name=f"{spec.host_name_prefix}{i}",
            host_spec=spec.host,
            link_spec=spec.link,
            loss_factory=spec.loss_factory,
        )
        hosts.append(host)
        uplinks.append(uplink)
        downlinks.append(downlink)

    return Rack(sim=sim, switch=switch, hosts=hosts, uplinks=uplinks, downlinks=downlinks)


# ----------------------------------------------------------------------
# Two-layer trees (SS6): racks under one root switch
# ----------------------------------------------------------------------

@dataclass
class TreeSpec:
    """A two-layer aggregation tree: ``num_racks`` racks of
    ``hosts_per_rack`` hosts under a single root switch.

    Rack switch ``r`` is named ``{rack_name_prefix}{r}``; its hosts
    occupy ports ``0..m-1`` and its uplink to the root occupies port
    ``m`` (``m = hosts_per_rack``).  Root port ``r`` faces rack ``r``.
    Hosts are numbered globally: host ``c`` of rack ``r`` is
    ``{host_name_prefix}{r*m + c}``.
    """

    num_racks: int = 2
    hosts_per_rack: int = 4
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    pipeline_latency_s: float = 800e-9
    loss_factory: Callable[[], LossModel] = NoLoss
    root_name: str = "root"
    rack_name_prefix: str = "rack"
    host_name_prefix: str = "w"


@dataclass
class TreeRack:
    """One built rack of a tree: the switch, its hosts, and its trunk."""

    index: int
    switch: SwitchChassis
    hosts: list[Host]
    host_uplinks: list[Link]
    host_downlinks: list[Link]
    uplink: Link  # rack -> root
    downlink: Link  # root -> rack
    uplink_port: int  # port on the rack switch facing the root


@dataclass
class Tree:
    """A built two-layer tree.  Programs and agents are the caller's."""

    sim: Simulator
    root: SwitchChassis
    racks: list[TreeRack]

    @property
    def hosts(self) -> list[Host]:
        """All hosts in global id order."""
        return [h for rack in self.racks for h in rack.hosts]

    def all_links(self) -> list[Link]:
        links: list[Link] = []
        for rack in self.racks:
            links.extend(rack.host_uplinks)
            links.extend(rack.host_downlinks)
            links.append(rack.uplink)
            links.append(rack.downlink)
        return links

    def conservation_holds(self) -> bool:
        return all(l.stats.conservation_holds() for l in self.all_links())


def build_tree(sim: Simulator, spec: TreeSpec) -> Tree:
    """Instantiate the root, the rack switches, and every cable.

    The caller loads dataplane programs into ``tree.root`` and each
    ``rack.switch`` and attaches agents to the hosts -- same contract as
    :func:`build_rack`.
    """
    if spec.num_racks < 1:
        raise ValueError("a tree needs at least one rack")
    if spec.hosts_per_rack < 1:
        raise ValueError("a rack needs at least one host")

    root = SwitchChassis(sim, spec.root_name, spec.pipeline_latency_s)
    racks: list[TreeRack] = []
    m = spec.hosts_per_rack
    for r in range(spec.num_racks):
        switch = SwitchChassis(
            sim, f"{spec.rack_name_prefix}{r}", spec.pipeline_latency_s
        )
        hosts: list[Host] = []
        host_uplinks: list[Link] = []
        host_downlinks: list[Link] = []
        for c in range(m):
            host, uplink, downlink = attach_host(
                sim,
                switch,
                port=c,
                name=f"{spec.host_name_prefix}{r * m + c}",
                host_spec=spec.host,
                link_spec=spec.link,
                loss_factory=spec.loss_factory,
            )
            hosts.append(host)
            host_uplinks.append(uplink)
            host_downlinks.append(downlink)
        rack_up, root_down = connect_switches(
            sim,
            lower=switch,
            lower_port=m,
            upper=root,
            upper_port=r,
            link_spec=spec.link,
            loss_factory=spec.loss_factory,
        )
        racks.append(
            TreeRack(
                index=r,
                switch=switch,
                hosts=hosts,
                host_uplinks=host_uplinks,
                host_downlinks=host_downlinks,
                uplink=rack_up,
                downlink=root_down,
                uplink_port=m,
            )
        )
    return Tree(sim=sim, root=root, racks=racks)
