"""FabricJob: one all-reduce over a controller-supervised Clos fabric.

The fabric counterpart of :class:`repro.controlplane.controller.Controller`:
build the Clos (:func:`~repro.net.fabric.topology.build_fabric`), admit
the job through :class:`~repro.core.tenancy.PoolAllocator` (the lease's
pool *epoch* is the fence every recovery relies on), mount the two-tier
aggregation -- :class:`~repro.core.hierarchy.RackAggregatorProgram` on
every leaf, Algorithm 3 on the ECMP-selected spine -- and run workers to
completion under the :class:`~repro.net.fabric.controller.FabricController`'s
supervision.

Aggregation placement: the job's slot pool lives on exactly one spine at
a time (the *active* spine); every leaf's partials are routed up that
trunk.  A reroute moves the pool: lease renewed (epoch + 1), fresh leaf
programs at the new epoch, fresh Algorithm 3 pool on the survivor, and a
fleet-wide replay from the minimum completed prefix.  Stale traffic from
the old home -- worker updates, partials, results still in flight -- is
dropped by the epoch fence at whichever tier it reaches first, so the
re-homed result is the exact integer sum regardless of what the failure
left in the pipes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.controlplane.faults import SwitchDownProgram
from repro.core.hierarchy import RackAggregatorProgram
from repro.core.tenancy import PoolAllocator
from repro.core.worker import SwitchMLWorker, WorkerStats
from repro.net.fabric.controller import FabricController, FabricState, RerouteRecord
from repro.net.fabric.dataplane import LeafDataplane, SpineDataplane
from repro.net.fabric.topology import ClosFabric, FabricSpec, build_fabric
from repro.net.host import HostSpec
from repro.net.link import LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.obs.base import NULL_OBS, Observability
from repro.sim.engine import Simulator

__all__ = [
    "FabricConfig",
    "FabricJob",
    "FabricRunResult",
    "collect_fabric_telemetry",
    "fabric_summary",
]


@dataclass
class FabricConfig:
    """Fabric shape plus protocol and liveness knobs."""

    num_leaves: int = 4
    num_spines: int = 2
    workers_per_leaf: int = 4
    pool_size: int = 16
    elements_per_packet: int = 32
    timeout_s: float = 1e-4
    bytes_per_element: int = 4
    max_retries: int | None = None
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    loss_factory: Callable[[], LossModel] = NoLoss
    pipeline_latency_s: float = 800e-9
    #: trunk heartbeat period (both directions of every trunk)
    probe_interval_s: float = 2e-4
    #: beacon silence that flips a trunk to DOWN; must exceed the probe
    #: interval by enough margin that queueing never fakes a failure
    link_down_after_s: float = 1e-3
    budget_fraction: float = 0.10
    obs: "Observability | None" = None
    #: frame-train egress on the workers: each window of chunk sends
    #: leaves the host as one train event instead of one event per frame
    #: (the fabric's switches run the per-frame pipeline, so this batches
    #: the TX side only).  Bit-identical schedule -- see
    #: tests/integration/test_train_equivalence.py.
    train_egress: bool = False
    #: split worker trains longer than this many frames; 0 = unlimited
    train_cap: int = 0
    seed: int = 0

    @property
    def num_workers(self) -> int:
        return self.num_leaves * self.workers_per_leaf


@dataclass
class FabricRunResult:
    """Outcome of one fabric all-reduce."""

    completed: bool
    state: str  # controller state at the end (monitoring / failed)
    results: list[np.ndarray | None]  # by global worker id
    worker_stats: list[WorkerStats]
    retransmissions: int
    reroutes: list[RerouteRecord]
    stale_epoch_drops: int
    stale_results_ignored: int
    heartbeats_punted: int
    epoch: int
    elapsed_s: float

    @property
    def max_tat(self) -> float:
        return max(s.tensor_aggregation_time for s in self.worker_stats)


class FabricJob:
    """Owns one job's lifecycle on a simulated 2-tier Clos."""

    def __init__(self, config: FabricConfig | None = None):
        self.config = config if config is not None else FabricConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.obs = cfg.obs if cfg.obs is not None else NULL_OBS
        self.sim.attach_obs(self.obs)
        self.fabric: ClosFabric = build_fabric(
            self.sim,
            FabricSpec(
                num_leaves=cfg.num_leaves,
                num_spines=cfg.num_spines,
                hosts_per_leaf=cfg.workers_per_leaf,
                link=cfg.link,
                host=cfg.host,
                pipeline_latency_s=cfg.pipeline_latency_s,
                loss_factory=cfg.loss_factory,
            ),
        )
        # In-band telemetry: stamp every link and pipeline, drain at
        # hosts and switches (off unless the obs layer carries a hub).
        if self.obs.telemetry is not None:
            self.obs.telemetry.instrument_fabric(self.fabric)
        # Admission: the spine pool aggregates *leaves*, so the lease is
        # sized at num_leaves children -- the SS6 composition that keeps
        # a 512-worker job within one pipeline's port budget.
        self.allocator = PoolAllocator(budget_fraction=cfg.budget_fraction)
        self.allocator.instrument(self.obs, clock=lambda: self.sim.now)
        self.handle = self.allocator.admit(
            cfg.num_leaves, cfg.pool_size, cfg.elements_per_packet
        )
        self.controller = FabricController(
            self,
            probe_interval_s=cfg.probe_interval_s,
            link_down_after_s=cfg.link_down_after_s,
            obs=self.obs,
        )
        self.active_spine = self.controller.select_spine(
            self.handle.job_id, [sp.index for sp in self.fabric.spines]
        )

        #: epoch-fence drops accumulated from programs retired by reroutes
        self.stale_epoch_drops_retired = 0
        self.leaf_programs: list[RackAggregatorProgram] = []
        self.leaf_dataplanes: list[LeafDataplane] = []
        self.spine_dataplanes: dict[int, SpineDataplane] = {}

        self.workers: list[SwitchMLWorker] = []
        m = cfg.workers_per_leaf
        for leaf in self.fabric.leaves:
            for c, host in enumerate(leaf.hosts):
                gwid = leaf.index * m + c
                worker = SwitchMLWorker(
                    sim=self.sim,
                    host=host,
                    wid=c,
                    num_workers=m,
                    pool_size=cfg.pool_size,
                    elements_per_packet=cfg.elements_per_packet,
                    timeout_s=cfg.timeout_s,
                    bytes_per_element=cfg.bytes_per_element,
                    on_complete=self._make_on_complete(gwid),
                    max_retries=cfg.max_retries,
                    epoch=self.handle.epoch,
                    member_id=gwid,
                    obs=self.obs,
                    switch_addr=leaf.switch.name,
                    train_egress=cfg.train_egress,
                    train_cap=cfg.train_cap,
                )
                host.attach_agent(worker)
                self.workers.append(worker)

        self._install_leaves()
        self._install_spines()

        self._done: set[int] = set()
        self._collective_done = False
        self._original_size = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> int:
        return self.handle.job_id

    @property
    def epoch(self) -> int:
        return self.handle.epoch

    def _install_leaves(self) -> None:
        """(Re)build every leaf's program + adapter at the lease epoch."""
        cfg = self.config
        spine_names = [sp.switch.name for sp in self.fabric.spines]
        self.leaf_programs = []
        self.leaf_dataplanes = []
        for leaf in self.fabric.leaves:
            program = RackAggregatorProgram(
                rack_id=leaf.index,
                num_children=cfg.workers_per_leaf,
                pool_size=cfg.pool_size,
                elements_per_packet=cfg.elements_per_packet,
                epoch=self.handle.epoch,
            )
            dataplane = LeafDataplane(
                program,
                child_names=[h.name for h in leaf.hosts],
                spine_names=spine_names,
                active_spine=self.active_spine,
                switch_name=leaf.switch.name,
                punt=self.controller.on_heartbeat,
                clock=lambda: self.sim.now,
                obs=self.obs,
                bytes_per_element=cfg.bytes_per_element,
            )
            leaf.switch.load_program(dataplane)
            self.leaf_programs.append(program)
            self.leaf_dataplanes.append(dataplane)

    def _install_spines(self) -> None:
        """Mount the pool on the active spine, standby adapters elsewhere.

        A crashed spine is skipped: its chassis keeps the blackhole
        program until some later operator action, which this model does
        not include (reroute, not repair, is the recovery story).
        """
        leaf_names = [leaf.switch.name for leaf in self.fabric.leaves]
        for sp in self.fabric.spines:
            if not sp.cpu_alive:
                continue
            dataplane = SpineDataplane(
                leaf_names=leaf_names,
                switch_name=sp.switch.name,
                punt=self.controller.on_heartbeat,
                program=self.handle.program if sp.index == self.active_spine else None,
                bytes_per_element=self.config.bytes_per_element,
            )
            sp.switch.load_program(dataplane)
            self.spine_dataplanes[sp.index] = dataplane

    def _make_on_complete(self, gwid: int):
        def on_complete(wid: int, time: float) -> None:
            self._done.add(gwid)
            if len(self._done) == self.config.num_workers:
                self._collective_done = True

        return on_complete

    # ------------------------------------------------------------------
    # Control-plane actions (called by the FabricController)
    # ------------------------------------------------------------------
    def quiesce_all(self) -> None:
        for worker in self.workers:
            worker.quiesce()

    def rehome(self, new_spine: int) -> None:
        """Fence the old home and mount the pool on ``new_spine``.

        Lease renewal bumps the epoch and hands back a fresh zeroed
        Algorithm 3 pool; leaf programs are rebuilt at the new epoch with
        their uplinks pointed at the survivor.  Anything still in flight
        from the old epoch dies at the first fence it meets.
        """
        self.stale_epoch_drops_retired += self.handle.program.stale_epoch_drops
        self.stale_epoch_drops_retired += sum(
            p.stale_epoch_drops for p in self.leaf_programs
        )
        self.handle = self.allocator.renew(self.handle.job_id)
        self.active_spine = new_spine
        self._install_leaves()
        self._install_spines()

    def replay_from_prefix(self) -> int:
        """Resume every worker from the fleet-wide minimum completed
        prefix.  All workers must restart from the same offset: slot
        stripes are offset-aligned across the whole fabric, which is
        what lets the spine aggregate leaf partials slot-by-slot."""
        resume = min(w.completed_prefix_elements() for w in self.workers)
        self._done.clear()
        for worker in self.workers:
            worker.reconfigure(epoch=self.handle.epoch)
            # Both tiers' pools were just re-zeroed by the lease renewal,
            # and racks that stalled behind the failed path are behind the
            # racks that kept streaming -- their slot-version counters
            # disagree, so every worker restarts its stripes at version 0
            # to keep the fabric's version invariant intact.
            worker.restart_from(resume, reset_versions=True)
        return resume

    def crash_spine(self, spine: int) -> None:
        """Fault hook: the spine's program, registers, and CPU are gone.

        Nothing is announced -- the controller detects the crash through
        missed trunk beacons, exactly like a production fabric."""
        sp = self.fabric.spines[spine]
        sp.cpu_alive = False
        sp.switch.load_program(SwitchDownProgram())
        self.spine_dataplanes.pop(spine, None)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def stale_epoch_drops(self) -> int:
        """Fence drops across both tiers and every lease generation."""
        return (
            self.stale_epoch_drops_retired
            + self.handle.program.stale_epoch_drops
            + sum(p.stale_epoch_drops for p in self.leaf_programs)
        )

    @property
    def heartbeats_punted(self) -> int:
        return sum(d.heartbeats_punted for d in self.leaf_dataplanes) + sum(
            d.heartbeats_punted for d in self.spine_dataplanes.values()
        )

    # ------------------------------------------------------------------
    # Running a collective
    # ------------------------------------------------------------------
    def all_reduce(
        self,
        tensors: Sequence[np.ndarray] | None = None,
        num_elements: int | None = None,
        deadline_s: float = 2.0,
        verify: bool = True,
    ) -> FabricRunResult:
        """Run one all-reduce across the whole fabric.

        Pass ``tensors`` (one per worker, global id order) for a real
        aggregation, or ``num_elements`` alone for a phantom-payload run
        (protocol and timing without numpy work; implies no verify).
        ``verify`` checks every worker's aggregate against the exact
        int64 sum of all inputs -- reroutes do not change the answer,
        because no worker is ever evicted by a fabric failure.
        """
        cfg = self.config
        n = cfg.num_workers
        k = cfg.elements_per_packet
        phantom = tensors is None
        if phantom:
            if num_elements is None:
                raise ValueError("need tensors or num_elements")
            size = num_elements + ((-num_elements) % k)
            self._original_size = num_elements
            padded: list[np.ndarray | None] = [None] * n
            verify = False
        else:
            if len(tensors) != n:
                raise ValueError(f"need {n} tensors, got {len(tensors)}")
            sizes = {len(t) for t in tensors}
            if len(sizes) != 1:
                raise ValueError("all workers must contribute equal-length tensors")
            self._original_size = sizes.pop()
            pad = (-self._original_size) % k
            padded = [
                np.concatenate([np.asarray(t, dtype=np.int64), np.zeros(pad, np.int64)])
                if pad
                else np.asarray(t, dtype=np.int64)
                for t in tensors
            ]
            size = self._original_size + pad

        self._done.clear()
        self._collective_done = False
        base = self.sim.now
        for worker, tensor in zip(self.workers, padded):
            if phantom:
                self.sim.schedule_at(base, worker.start, None, size)
            else:
                self.sim.schedule_at(base, worker.start, tensor)
        self.controller.start()
        deadline = base + deadline_s
        # Heartbeat and sweep timers keep the heap populated forever, so
        # the loop exits on the done flag (or the deadline).
        while not self._collective_done and self.sim.step():
            if self.sim.now > deadline:
                break
        self.controller.stop()
        elapsed = self.sim.now - base

        results = [
            w.result[: self._original_size].copy() if w.result is not None else None
            for w in self.workers
        ]
        completed = self._collective_done
        if verify and completed:
            expected = np.sum(padded, axis=0, dtype=np.int64)[: self._original_size]
            for gwid, res in enumerate(results):
                if res is None or not np.array_equal(res, expected):
                    raise AssertionError(
                        f"worker {gwid} fabric aggregate differs from the "
                        f"exact {n}-worker sum"
                    )
        return FabricRunResult(
            completed=completed,
            state=self.controller.state.value,
            results=results,
            worker_stats=[w.stats for w in self.workers],
            retransmissions=sum(w.stats.retransmissions for w in self.workers),
            reroutes=list(self.controller.records),
            stale_epoch_drops=self.stale_epoch_drops,
            stale_results_ignored=sum(
                w.stats.stale_results_ignored for w in self.workers
            ),
            heartbeats_punted=self.heartbeats_punted,
            epoch=self.handle.epoch,
            elapsed_s=elapsed,
        )

    # ------------------------------------------------------------------
    # Observability views
    # ------------------------------------------------------------------
    def dashboard(self, link_limit: int = 8):
        """A :class:`repro.obs.views.Dashboard` over this fabric run."""
        from repro.obs.views import Dashboard

        telemetry = (
            collect_fabric_telemetry(self) if self.sim.now > 0 else None
        )
        return Dashboard(
            obs=self.obs,
            telemetry=telemetry,
            control_summary=fabric_summary(self),
            link_limit=link_limit,
        )


def collect_fabric_telemetry(job: FabricJob, elapsed_s: float | None = None):
    """Per-link utilization across the whole Clos (trunks included).

    Returns the same :class:`repro.harness.telemetry.RackTelemetry` shape
    the single-rack path uses, so the dashboard renders it unchanged.
    """
    from repro.harness.telemetry import LinkReading, RackTelemetry

    elapsed = job.sim.now if elapsed_s is None else elapsed_s
    if elapsed <= 0:
        raise ValueError("nothing has run yet; telemetry window is empty")
    links = [
        LinkReading(
            name=link.name,
            utilization=link.utilization(elapsed),
            frames_sent=link.stats.frames_sent,
            frames_lost=link.stats.frames_lost,
            frames_corrupted=link.stats.frames_corrupted,
            frames_queue_dropped=link.stats.frames_queue_dropped,
            queue_delay_s=link.queue_delay,
            backlog_bytes=link.queue_delay * link.spec.rate_bps / 8.0,
        )
        for link in job.fabric.all_links()
    ]
    cores = {
        host.name: sum(c.utilization(elapsed) for c in host.cores) / len(host.cores)
        for host in job.fabric.hosts
    }
    telemetry = RackTelemetry(
        elapsed_s=elapsed, links=links, core_utilization=cores
    )
    telemetry.publish(job.obs.metrics)
    return telemetry


def fabric_summary(job: FabricJob) -> str:
    """Controller state, reroute history, and fence accounting."""
    lines = [job.controller.summary()]
    lines.append(
        f"active spine: spine{job.active_spine}, epoch: {job.epoch}, "
        f"stale-epoch drops: {job.stale_epoch_drops}, "
        f"link heartbeats punted: {job.heartbeats_punted}"
    )
    return "\n".join(lines)
