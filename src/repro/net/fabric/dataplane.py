"""Fabric dataplanes: the leaf and spine chassis programs.

The leaf runs the SS6 :class:`~repro.core.hierarchy.RackAggregatorProgram`
(aggregate the rack, forward one partial upstream); the *active* spine
runs plain Algorithm 3 (:class:`~repro.core.switch_program.SwitchMLProgram`)
over the leaves; standby spines run no aggregation program at all.  Both
adapters additionally punt :class:`LinkHeartbeat` frames to the fabric
controller -- the CPU-port path per-link liveness is built on -- and the
leaf measures the two aggregation tiers into ``repro.obs`` histograms:

* ``fabric_leaf_tier_seconds``  -- first child contribution of a slot
  phase to the partial leaving on the uplink;
* ``fabric_spine_tier_seconds`` -- partial out to final result back.

Routing at the leaf is controller-programmed: partials always leave on
the uplink facing the leaf's *active* spine; a reroute installs a fresh
adapter pointing at the survivor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.hierarchy import RackAggregatorProgram
from repro.core.packet import Heartbeat, SwitchMLPacket, fanout_frames
from repro.core.switch_program import SwitchAction, SwitchMLProgram
from repro.net.packet import ETHERNET_OVERHEAD_BYTES, Frame
from repro.net.switchchassis import PortDecision
from repro.obs.base import NULL_OBS, Observability

__all__ = [
    "LINK_HEARTBEAT_WIRE_BYTES",
    "LeafDataplane",
    "LinkHeartbeat",
    "SpineDataplane",
]

#: a link heartbeat carries leaf id, spine id, direction, and a sequence
#: number (4 + 4 + 1 + 4 bytes of payload, padded)
LINK_HEARTBEAT_WIRE_BYTES = ETHERNET_OVERHEAD_BYTES + 16


@dataclass(slots=True)
class LinkHeartbeat:
    """A per-trunk liveness beacon, one per direction.

    Emitted by the switch-local CPU at each end of every leaf-spine
    trunk and punted to the fabric controller at the far end.  Because
    the beacon rides the trunk itself, a dead cable, a flapping port,
    and a crashed far-end switch all present identically: the beacons
    stop arriving.  ``toward_spine`` says which direction this beacon
    probed (True = emitted by the leaf, heard at the spine).
    """

    leaf: int
    spine: int
    toward_spine: bool
    seq: int = 0

    def to_frame(self, src: str, dst: str) -> Frame:
        return Frame(
            wire_bytes=LINK_HEARTBEAT_WIRE_BYTES,
            message=self,
            src=src,
            dst=dst,
        )


class LeafDataplane:
    """Chassis adapter for a leaf: workers below, one trunk per spine.

    Ports ``0..m-1`` are workers; ``m + s`` faces spine ``s``.  Partials
    go up the ``active_spine`` trunk only (the controller's path
    selection); results are accepted from any trunk port (the old path
    may still drain) and fenced by epoch inside the program.
    """

    def __init__(
        self,
        program: RackAggregatorProgram,
        child_names: list[str],
        spine_names: list[str],
        active_spine: int,
        switch_name: str,
        punt: Callable[[LinkHeartbeat], None],
        clock: Callable[[], float] | None = None,
        obs: "Observability | None" = None,
        bytes_per_element: int = 4,
    ):
        self.program = program
        self.child_names = child_names
        self.spine_names = spine_names
        self.num_children = len(child_names)
        self.active_spine = active_spine
        self.switch_name = switch_name
        self.punt = punt
        self.bytes_per_element = bytes_per_element
        self.heartbeats_punted = 0
        self.worker_heartbeats_dropped = 0
        self._clock = clock if clock is not None else (lambda: 0.0)
        obs = obs if obs is not None else NULL_OBS
        metrics = obs.metrics
        self._m_on = metrics.enabled
        self._h_leaf = metrics.histogram(
            "fabric_leaf_tier_seconds",
            "first child contribution to partial forwarded, per slot phase",
        )
        self._h_spine = metrics.histogram(
            "fabric_spine_tier_seconds",
            "partial forwarded to result received, per slot phase",
        )
        #: (ver, idx) -> first-contribution / partial-forwarded timestamps
        self._t_first: dict[tuple[int, int], float] = {}
        self._t_fwd: dict[tuple[int, int], float] = {}

    def uplink_port(self, spine: int) -> int:
        return self.num_children + spine

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        message = frame.message
        if isinstance(message, LinkHeartbeat):
            if not frame.corrupted:
                self.heartbeats_punted += 1
                self.punt(message)
            return PortDecision.drop()
        if isinstance(message, Heartbeat):
            # worker beacons terminate here; fabric liveness is per-trunk
            self.worker_heartbeats_dropped += 1
            return PortDecision.drop()
        if not isinstance(message, SwitchMLPacket):
            return PortDecision.drop()

        if in_port >= self.num_children:
            # From a spine: a completed aggregate for the rack.
            decision = self.program.handle_result(message)
            if decision.action is not SwitchAction.MULTICAST:
                return PortDecision.drop()
            assert decision.packet is not None
            if self._m_on:
                key = (message.ver, message.idx)
                t0 = self._t_fwd.pop(key, None)
                if t0 is not None:
                    self._h_spine.observe(self._clock() - t0)
            return PortDecision(
                deliveries=list(
                    enumerate(
                        fanout_frames(
                            decision.packet,
                            self.switch_name,
                            self.child_names,
                            self.bytes_per_element,
                        )
                    )
                )
            )

        # From a worker.
        key = (message.ver, message.idx)
        if self._m_on and message.epoch == self.program.epoch:
            self._t_first.setdefault(key, self._clock())
        decision = self.program.handle_child(message)
        if decision.action is SwitchAction.MULTICAST:
            # forward the partial up the active trunk
            assert decision.packet is not None
            if self._m_on:
                now = self._clock()
                if not decision.packet.is_retransmission:
                    t0 = self._t_first.pop(key, None)
                    if t0 is not None:
                        self._h_leaf.observe(now - t0)
                    self._t_fwd[key] = now
            out = decision.packet.to_frame(
                self.switch_name,
                self.spine_names[self.active_spine],
                self.bytes_per_element,
            )
            return PortDecision(deliveries=[(self.uplink_port(self.active_spine), out)])
        if decision.action is SwitchAction.UNICAST:
            assert decision.packet is not None and decision.unicast_wid is not None
            out = decision.packet.to_frame(
                self.switch_name,
                self.child_names[decision.unicast_wid],
                self.bytes_per_element,
            )
            return PortDecision(deliveries=[(decision.unicast_wid, out)])
        return PortDecision.drop()


class SpineDataplane:
    """Chassis adapter for a spine: Algorithm 3 over the leaves, or pure
    standby (heartbeat punt only) when no program is mounted.

    Spine port ``l`` faces leaf ``l``; partials arrive with
    ``wid = leaf index`` and results are addressed back per leaf.
    """

    def __init__(
        self,
        leaf_names: list[str],
        switch_name: str,
        punt: Callable[[LinkHeartbeat], None],
        program: SwitchMLProgram | None = None,
        bytes_per_element: int = 4,
    ):
        self.leaf_names = leaf_names
        self.switch_name = switch_name
        self.punt = punt
        self.program = program
        self.bytes_per_element = bytes_per_element
        self.heartbeats_punted = 0
        self.standby_drops = 0

    def process(self, frame: Frame, in_port: int) -> PortDecision:
        message = frame.message
        if isinstance(message, LinkHeartbeat):
            if not frame.corrupted:
                self.heartbeats_punted += 1
                self.punt(message)
            return PortDecision.drop()
        if not isinstance(message, SwitchMLPacket) or message.from_switch:
            return PortDecision.drop()
        if self.program is None:
            self.standby_drops += 1
            return PortDecision.drop()
        decision = self.program.handle(message)
        if decision.action is SwitchAction.DROP:
            return PortDecision.drop()
        assert decision.packet is not None
        if decision.action is SwitchAction.UNICAST:
            leaf = decision.unicast_wid
            assert leaf is not None
            out = decision.packet.to_frame(
                self.switch_name, self.leaf_names[leaf], self.bytes_per_element
            )
            return PortDecision(deliveries=[(leaf, out)])
        return PortDecision(
            deliveries=list(
                enumerate(
                    fanout_frames(
                        decision.packet,
                        self.switch_name,
                        self.leaf_names,
                        self.bytes_per_element,
                    )
                )
            )
        )
