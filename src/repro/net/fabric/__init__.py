"""repro.net.fabric: multi-switch Clos fabrics with a fabric controller.

The scale-out layer beyond a single rack (and beyond the SS6 tree): a
generated 2-tier spine-leaf fabric, two-tier in-network aggregation with
per-switch slot pools, and an SDN-style controller doing discovery,
ECMP-style placement, per-trunk liveness, and reroute-on-failure through
the pool-epoch fence.

* :mod:`repro.net.fabric.topology`   -- :func:`build_fabric` and the specs
* :mod:`repro.net.fabric.dataplane`  -- leaf/spine chassis programs
* :mod:`repro.net.fabric.controller` -- the fabric controller
* :mod:`repro.net.fabric.job`        -- :class:`FabricJob`, the runnable
* :mod:`repro.net.fabric.faults`     -- cross-rack FaultPlans
"""

from repro.net.fabric.controller import (
    FabricController,
    FabricState,
    LinkLiveness,
    RerouteRecord,
)
from repro.net.fabric.dataplane import LeafDataplane, LinkHeartbeat, SpineDataplane
from repro.net.fabric.faults import (
    CongestTrunk,
    CrashSpine,
    FabricFaultInjector,
    FabricFaultPlan,
    FlapFabricLink,
    StragglerRack,
)
from repro.net.fabric.job import (
    FabricConfig,
    FabricJob,
    FabricRunResult,
    collect_fabric_telemetry,
    fabric_summary,
)
from repro.net.fabric.topology import (
    ClosFabric,
    FabricLeaf,
    FabricSpec,
    FabricSpine,
    build_fabric,
)

__all__ = [
    "ClosFabric",
    "CongestTrunk",
    "CrashSpine",
    "FabricConfig",
    "FabricController",
    "FabricFaultInjector",
    "FabricFaultPlan",
    "FabricJob",
    "FabricLeaf",
    "FabricRunResult",
    "FabricSpec",
    "FabricSpine",
    "FabricState",
    "FlapFabricLink",
    "LeafDataplane",
    "LinkHeartbeat",
    "LinkLiveness",
    "RerouteRecord",
    "SpineDataplane",
    "StragglerRack",
    "build_fabric",
    "collect_fabric_telemetry",
    "fabric_summary",
]
