"""The fabric controller: discovery, path selection, liveness, reroute.

An SDN-style controller for the 2-tier Clos of
:mod:`repro.net.fabric.topology`.  It owns four concerns:

* **Topology discovery** -- walk the built fabric once and record the
  adjacency (which trunk connects which leaf to which spine, and the
  port each end uses), the view every later decision consults.
* **Path selection** -- ECMP-style: the spine that aggregates a job is
  a deterministic hash of the job id over the currently healthy spines,
  so concurrent jobs spread across the spine tier without coordination.
* **Per-link liveness** -- both ends of every trunk emit
  :class:`~repro.net.fabric.dataplane.LinkHeartbeat` beacons through the
  trunk itself; the far end punts them here.  A periodic sweep marks a
  trunk DOWN once either direction has been silent longer than
  ``link_down_after_s``.  A spine whose every trunk is down is declared
  dead (its CPU stopped beaconing too -- the crash signature).
* **Reroute-on-failure** -- when the aggregation spine becomes
  unhealthy, re-home the job: quiesce the workers, renew the pool lease
  (epoch + 1 -- the same fence that guards single-rack recovery), mount
  the fresh program on a surviving spine, point every leaf's uplink at
  it, and replay from the fleet-wide completed prefix.  In-flight
  pre-failure traffic is epoch-fenced at both tiers, so the re-homed
  aggregation is bit-correct by the same argument as SS3.5.

State machine: ``MONITORING`` -> (active spine unhealthy) ->
``REROUTING`` -> ``MONITORING`` (survivor found) or ``FAILED`` (spine
tier exhausted; the run reports ``completed=False``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.net.fabric.dataplane import LinkHeartbeat
from repro.obs.base import NULL_OBS, Observability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric.job import FabricJob

__all__ = ["FabricController", "FabricState", "LinkLiveness", "RerouteRecord"]

#: Knuth's multiplicative hash constant -- a stable, salt-free spread of
#: job ids over the healthy spines (Python's ``hash`` is salted).
_ECMP_MIX = 2654435761

#: spines whose load sits within this of the minimum count as tied (and
#: fall back to the hash): utilization noise below this is not signal
_LOAD_TIE_EPS = 1e-3


class FabricState(enum.Enum):
    MONITORING = "monitoring"
    REROUTING = "rerouting"
    FAILED = "failed"


@dataclass
class LinkLiveness:
    """Controller-side view of one leaf-spine trunk."""

    leaf: int
    spine: int
    up: bool = True
    #: last beacon heard per direction (True = leaf-to-spine)
    last_heard: dict[bool, float] = field(default_factory=dict)
    down_transitions: int = 0

    def stalest(self) -> float:
        return min(self.last_heard.values())


@dataclass
class RerouteRecord:
    """One re-homing incident, with its phase timeline.

    ``failed_at`` is the last moment the failed path was known-good (the
    stalest beacon on it); ``detected_at`` is when the sweep crossed the
    threshold.  The gap between them -- detection lag -- dominates
    ``recovery_time``, as it does in production fabrics.
    """

    cause: str
    from_spine: int
    to_spine: int | None
    epoch_before: int
    epoch_after: int
    resumed_from_element: int
    failed_at: float
    detected_at: float
    completed_at: float

    @property
    def recovery_time(self) -> float:
        return self.completed_at - self.failed_at

    @property
    def detection_lag(self) -> float:
        return self.detected_at - self.failed_at


class FabricController:
    """Supervises one :class:`~repro.net.fabric.job.FabricJob`'s fabric."""

    def __init__(
        self,
        job: "FabricJob",
        probe_interval_s: float = 2e-4,
        link_down_after_s: float = 1e-3,
        obs: "Observability | None" = None,
    ):
        if probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if link_down_after_s <= probe_interval_s:
            raise ValueError(
                "link_down_after_s must exceed the probe interval, or every "
                "sweep declares every link down"
            )
        self.job = job
        self.sim = job.sim
        self.probe_interval_s = probe_interval_s
        self.link_down_after_s = link_down_after_s
        self.state = FabricState.MONITORING
        self.records: list[RerouteRecord] = []
        self.obs = obs if obs is not None else NULL_OBS
        metrics = self.obs.metrics
        self._m_reroutes = metrics.counter(
            "fabric_reroutes_total", "aggregation re-homings to a new spine"
        )
        self._m_link_down = metrics.counter(
            "fabric_link_down_total", "trunk DOWN transitions"
        )
        self._m_link_up = metrics.counter(
            "fabric_link_up_total", "trunk UP transitions (flap healed)"
        )
        self._h_recovery = metrics.histogram(
            "fabric_recovery_seconds",
            "failure (last good beacon) to replay issued, per reroute",
        )
        self._g_active_spine = metrics.gauge(
            "fabric_active_spine", "spine currently homing the aggregation"
        )
        self._m_load_aware = metrics.counter(
            "fabric_load_aware_placements_total",
            "pool placements decided from telemetry trunk loads",
        )
        self._tracer = self.obs.tracer
        # -- topology discovery (the one walk; everything below uses it)
        self.links: dict[tuple[int, int], LinkLiveness] = {}
        self._adjacency: list[dict[str, int | str]] = []
        for leaf, spine, uplink, downlink in job.fabric.trunk_links():
            self.links[(leaf, spine)] = LinkLiveness(leaf=leaf, spine=spine)
            self._adjacency.append(
                {
                    "leaf": leaf,
                    "spine": spine,
                    "leaf_port": job.fabric.leaves[leaf].uplink_port(spine),
                    "spine_port": leaf,
                    "uplink": uplink.name,
                    "downlink": downlink.name,
                }
            )
        self._seq = 0
        self._probe_timer = None
        self._sweep_timer = None

    # ------------------------------------------------------------------
    # Discovery & path selection
    # ------------------------------------------------------------------
    def topology_view(self) -> dict:
        """The discovered adjacency, as plain data (CLI/JSON-friendly)."""
        fabric = self.job.fabric
        return {
            "leaves": [leaf.switch.name for leaf in fabric.leaves],
            "spines": [spine.switch.name for spine in fabric.spines],
            "hosts_per_leaf": fabric.spec.hosts_per_leaf,
            "trunks": list(self._adjacency),
        }

    def healthy_spines(self) -> list[int]:
        """Spines with a beaconing CPU and every trunk UP."""
        fabric = self.job.fabric
        out = []
        for spine in fabric.spines:
            s = spine.index
            if not spine.cpu_alive:
                continue
            if all(self.links[(l, s)].up for l in range(len(fabric.leaves))):
                out.append(s)
        return out

    def spine_is_dead(self, spine: int) -> bool:
        """Every trunk down = the crash signature (one flap is not)."""
        return all(
            not self.links[(l, spine)].up
            for l in range(len(self.job.fabric.leaves))
        )

    def select_spine(self, job_id: int, candidates: list[int]) -> int:
        """ECMP-style deterministic choice among ``candidates``."""
        if not candidates:
            raise ValueError("no healthy spine to select")
        return candidates[(job_id * _ECMP_MIX) % len(candidates)]

    def spine_loads(self, window: int | None = None) -> dict[int, float]:
        """Mean trunk utilization per spine index over the telemetry
        load window (empty dict when no telemetry hub is installed)."""
        telemetry = self.obs.telemetry
        if telemetry is None:
            return {}
        collector = telemetry.collector
        if window is None:
            window = telemetry.config.load_window
        end_idx = collector.interval_index(self.sim.now)
        sums: dict[int, float] = {}
        counts: dict[int, int] = {}
        for adj in self._adjacency:
            spine = adj["spine"]
            for key in ("uplink", "downlink"):
                series = collector.links.get(adj[key])
                util = (
                    series.utilization(window, end_idx)
                    if series is not None
                    else 0.0
                )
                sums[spine] = sums.get(spine, 0.0) + util
                counts[spine] = counts.get(spine, 0) + 1
        return {s: sums[s] / counts[s] for s in sums}

    def place_load_aware(
        self,
        job_id: int,
        candidates: list[int] | None = None,
        window: int | None = None,
    ) -> int:
        """Least-loaded-spine placement with an ECMP tie-break.

        Ranks the healthy candidate spines by mean trunk utilization
        over the telemetry load window and homes the pool on the least
        loaded; spines within ``_LOAD_TIE_EPS`` of the minimum are tied
        and resolved by the same deterministic job-id hash as
        :meth:`select_spine`.  Without a telemetry hub (or before any
        traffic), every load reads zero, all candidates tie, and the
        choice degrades to exactly the hash-ECMP placement."""
        if candidates is None:
            candidates = self.healthy_spines()
        if not candidates:
            raise ValueError("no healthy spine to select")
        loads = self.spine_loads(window)
        if not loads:
            return self.select_spine(job_id, candidates)
        ranked = {s: loads.get(s, 0.0) for s in candidates}
        floor = min(ranked.values())
        tied = [s for s in candidates if ranked[s] <= floor + _LOAD_TIE_EPS]
        choice = tied[(job_id * _ECMP_MIX) % len(tied)]
        self._m_load_aware.inc()
        self._tracer.emit(
            "fabric.place_load_aware", ts=self.sim.now, cat="fabric",
            spine=choice,
            loads={f"spine{s}": round(l, 4) for s, l in ranked.items()},
        )
        return choice

    # ------------------------------------------------------------------
    # Liveness: beacons out, punts in, sweep
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin beaconing and sweeping (idempotent)."""
        self.stop()
        now = self.sim.now
        for link in self.links.values():
            link.last_heard = {True: now, False: now}
        self._g_active_spine.set(self.job.active_spine)
        self._probe_timer = self.sim.schedule(
            self.probe_interval_s, self._probe_tick
        )
        self._sweep_timer = self.sim.schedule(
            self.link_down_after_s, self._sweep
        )

    def stop(self) -> None:
        for attr in ("_probe_timer", "_sweep_timer"):
            timer = getattr(self, attr)
            if timer is not None:
                timer.cancel()
                setattr(self, attr, None)

    def _probe_tick(self) -> None:
        fabric = self.job.fabric
        self._seq += 1
        for leaf, spine, uplink, downlink in fabric.trunk_links():
            leaf_name = fabric.leaves[leaf].switch.name
            spine_name = fabric.spines[spine].switch.name
            # leaf CPU -> spine (leaves do not crash in this model)
            uplink.send(
                LinkHeartbeat(leaf, spine, True, self._seq).to_frame(
                    leaf_name, spine_name
                )
            )
            # spine CPU -> leaf, only while that CPU is alive
            if fabric.spines[spine].cpu_alive:
                downlink.send(
                    LinkHeartbeat(leaf, spine, False, self._seq).to_frame(
                        spine_name, leaf_name
                    )
                )
        self._probe_timer = self.sim.schedule(
            self.probe_interval_s, self._probe_tick
        )

    def on_heartbeat(self, beat: LinkHeartbeat) -> None:
        """Punt path from the leaf/spine dataplanes."""
        link = self.links.get((beat.leaf, beat.spine))
        if link is None:
            return
        link.last_heard[beat.toward_spine] = self.sim.now

    def _sweep(self) -> None:
        now = self.sim.now
        for link in self.links.values():
            silent = now - link.stalest()
            if link.up and silent > self.link_down_after_s:
                link.up = False
                link.down_transitions += 1
                self._m_link_down.inc()
                self._tracer.emit(
                    "fabric.link_down", ts=now, cat="fabric",
                    leaf=link.leaf, spine=link.spine,
                )
            elif not link.up and silent <= self.link_down_after_s:
                link.up = True
                self._m_link_up.inc()
                self._tracer.emit(
                    "fabric.link_up", ts=now, cat="fabric",
                    leaf=link.leaf, spine=link.spine,
                )
        if self.state is not FabricState.FAILED:
            active = self.job.active_spine
            bad = [
                link for link in self.links.values()
                if link.spine == active and not link.up
            ]
            if bad or not self.job.fabric.spines[active].cpu_alive:
                self._reroute(bad)
        self._sweep_timer = self.sim.schedule(
            self.probe_interval_s, self._sweep
        )

    # ------------------------------------------------------------------
    # Reroute
    # ------------------------------------------------------------------
    def _reroute(self, bad_links: list[LinkLiveness]) -> None:
        """Re-home the aggregation off the failed active spine."""
        job = self.job
        now = self.sim.now
        old = job.active_spine
        cause = (
            "spine-dead" if self.spine_is_dead(old) or
            not job.fabric.spines[old].cpu_alive
            else "trunk-down"
        )
        failed_at = min(
            (l.stalest() for l in bad_links),
            default=now - self.link_down_after_s,
        )
        self.state = FabricState.REROUTING
        self._tracer.emit(
            "fabric.reroute_start", ts=now, cat="fabric",
            from_spine=old, cause=cause,
        )
        job.quiesce_all()
        candidates = [s for s in self.healthy_spines() if s != old]
        epoch_before = job.epoch
        if not candidates:
            self.state = FabricState.FAILED
            self.records.append(
                RerouteRecord(
                    cause=cause, from_spine=old, to_spine=None,
                    epoch_before=epoch_before, epoch_after=epoch_before,
                    resumed_from_element=0,
                    failed_at=failed_at, detected_at=now, completed_at=now,
                )
            )
            self._tracer.emit(
                "fabric.failed", ts=now, cat="fabric", from_spine=old
            )
            return
        # load-aware when a telemetry hub is live (break the ECMP tie
        # toward the least-loaded survivor); pure hash-ECMP otherwise
        new = self.place_load_aware(job.job_id, candidates)
        job.rehome(new)
        resumed = job.replay_from_prefix()
        self._g_active_spine.set(new)
        self._m_reroutes.inc()
        record = RerouteRecord(
            cause=cause, from_spine=old, to_spine=new,
            epoch_before=epoch_before, epoch_after=job.epoch,
            resumed_from_element=resumed,
            failed_at=failed_at, detected_at=now, completed_at=self.sim.now,
        )
        self.records.append(record)
        self._h_recovery.observe(record.recovery_time)
        self._tracer.emit(
            "fabric.reroute_done", ts=self.sim.now, cat="fabric",
            to_spine=new, epoch=job.epoch, resumed_from=resumed,
        )
        self.state = FabricState.MONITORING

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One text block: state, links, and reroute history."""
        lines = [f"fabric controller: state={self.state.value}"]
        down = [l for l in self.links.values() if not l.up]
        lines.append(
            f"trunks: {len(self.links) - len(down)}/{len(self.links)} up"
            + (f" (down: {[(l.leaf, l.spine) for l in down]})" if down else "")
        )
        if not self.records:
            lines.append("reroutes: none")
        for r in self.records:
            dest = f"spine{r.to_spine}" if r.to_spine is not None else "NONE"
            lines.append(
                f"reroute [{r.cause}] spine{r.from_spine} -> {dest}: "
                f"epoch {r.epoch_before} -> {r.epoch_after}, resumed from "
                f"element {r.resumed_from_element}, recovery "
                f"{r.recovery_time * 1e3:.3f} ms "
                f"(detection {r.detection_lag * 1e3:.3f} ms)"
            )
        return "\n".join(lines)
