"""Declarative fault injection for fabric jobs.

The fabric analogue of :mod:`repro.controlplane.faults`, covering the
cross-rack failure taxonomy the Clos introduces:

* :class:`CrashSpine` -- a spine dies: program, registers, and local CPU
  gone.  Every trunk through it goes silent at once; if it was homing
  the aggregation, the controller must re-home.
* :class:`FlapFabricLink` -- one leaf-spine trunk drops every frame for
  a window, then heals (a flapping transceiver).  Only that trunk's
  beacons stop; a flap on the active spine's trunk forces a reroute even
  though the spine itself is fine.
* :class:`StragglerRack` -- every host link in one rack turns heavily
  lossy for a window (an overloaded or mis-cabled ToR).  No reroute is
  warranted -- the trunks stay healthy -- but the whole fabric's
  self-clocked streams slow to the straggler's pace, and the run must
  still produce exact sums.
* :class:`CongestTrunk` -- background traffic offered at a fraction of
  line rate on one leaf-to-spine uplink for a window (another tenant's
  elephant flow crossing the fabric).  Nothing fails: the junk frames
  die at the spine's pipeline, but they occupy the transmitter, so the
  job's partials and the trunk's heartbeats queue behind them.  This is
  the load signal the in-band telemetry detectors
  (:mod:`repro.obs.telemetry`) and the controller's load-aware
  placement are built to see.

Link faults swap the link's loss model for
:class:`~repro.controlplane.faults.DropAll` (or a heavy Bernoulli) and
restore the original afterwards, composing with any probabilistic loss
already configured -- same layering as the single-rack injector.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any

from repro.controlplane.faults import DropAll
from repro.net.loss import BernoulliLoss
from repro.net.packet import MTU_FRAME_BYTES, Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.fabric.job import FabricJob

__all__ = [
    "CongestTrunk",
    "CrashSpine",
    "FabricFaultInjector",
    "FabricFaultPlan",
    "FlapFabricLink",
    "StragglerRack",
]


@dataclass(frozen=True)
class CrashSpine:
    """Fail-stop ``spine`` at ``at_s`` (no repair; reroute recovers)."""

    spine: int
    at_s: float


@dataclass(frozen=True)
class FlapFabricLink:
    """Both directions of the ``leaf``-``spine`` trunk dead during the
    window."""

    leaf: int
    spine: int
    at_s: float
    down_for_s: float


@dataclass(frozen=True)
class StragglerRack:
    """Every host link of ``leaf`` drops ``loss`` of frames during the
    window."""

    leaf: int
    at_s: float
    down_for_s: float
    loss: float = 0.3


@dataclass(frozen=True)
class CongestTrunk:
    """Background traffic at ``fraction`` of line rate on the
    ``leaf``-to-``spine`` uplink during the window.

    The injector offers one ``frame_bytes`` junk frame every
    ``serialization / fraction`` seconds; at ``fraction >= 1`` the
    transmitter never drains and queueing delay grows linearly for the
    duration.  The junk is not a SwitchML packet, so the spine's
    pipeline discards it on arrival -- the fault congests the wire
    without perturbing the aggregation state.
    """

    leaf: int
    spine: int
    at_s: float
    down_for_s: float
    fraction: float = 1.05
    frame_bytes: int = MTU_FRAME_BYTES


FabricFault = CrashSpine | FlapFabricLink | StragglerRack | CongestTrunk

#: fault kind name -> class, for (de)serialization
_FAULT_KINDS: dict[str, type] = {
    "crash_spine": CrashSpine,
    "flap_fabric_link": FlapFabricLink,
    "straggler_rack": StragglerRack,
    "congest_trunk": CongestTrunk,
}
_KIND_NAMES = {cls: name for name, cls in _FAULT_KINDS.items()}


@dataclass
class FabricFaultPlan:
    """An ordered set of fabric faults to inject into one run."""

    faults: list[FabricFault] = field(default_factory=list)

    def add(self, fault: FabricFault) -> "FabricFaultPlan":
        self.faults.append(fault)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; round-trips via :meth:`from_dict`.

        Same contract as :meth:`repro.controlplane.faults.FaultPlan
        .to_dict`: what the sweep/fuzz artifacts persist so a recorded
        draw replays standalone.
        """
        return {
            "faults": [
                {"kind": _KIND_NAMES[type(f)], **asdict(f)}
                for f in self.faults
            ]
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FabricFaultPlan":
        faults = []
        for entry in d.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                fault_cls = _FAULT_KINDS[kind]
            except KeyError:
                raise ValueError(
                    f"unknown fabric fault kind {kind!r} "
                    f"(have {sorted(_FAULT_KINDS)})"
                ) from None
            faults.append(fault_cls(**entry))
        return cls(faults)

    def validate(self, num_leaves: int, num_spines: int) -> None:
        for f in self.faults:
            if f.at_s < 0:
                raise ValueError(f"{f} scheduled in the past")
            if (
                isinstance(f, (FlapFabricLink, StragglerRack, CongestTrunk))
                and f.down_for_s <= 0
            ):
                raise ValueError(f"{f} needs a positive outage duration")
            if isinstance(f, (CrashSpine, FlapFabricLink, CongestTrunk)):
                if not 0 <= f.spine < num_spines:
                    raise ValueError(f"{f} targets unknown spine {f.spine}")
            if isinstance(f, (FlapFabricLink, StragglerRack, CongestTrunk)):
                if not 0 <= f.leaf < num_leaves:
                    raise ValueError(f"{f} targets unknown leaf {f.leaf}")
            if isinstance(f, StragglerRack) and not 0 < f.loss <= 1:
                raise ValueError(f"{f} loss must be in (0, 1]")
            if isinstance(f, CongestTrunk):
                if f.fraction <= 0:
                    raise ValueError(f"{f} fraction must be positive")
                if f.frame_bytes <= 0:
                    raise ValueError(f"{f} frame_bytes must be positive")


class FabricFaultInjector:
    """Arms a :class:`FabricFaultPlan` on a fabric job's simulator."""

    def __init__(self, job: "FabricJob", plan: FabricFaultPlan):
        self.job = job
        self.plan = plan
        self.armed = False
        self._saved_trunk: dict[tuple[int, int], tuple] = {}
        self._saved_rack: dict[int, list[tuple]] = {}
        # overlap depth per target: only the outermost window saves the
        # real loss model and only its matching end restores it (a
        # nested save would capture the fault's own loss model and the
        # "heal" would leave the link broken forever)
        self._trunk_depth: dict[tuple[int, int], int] = {}
        self._rack_depth: dict[int, int] = {}

    def arm(self) -> None:
        """Schedule every fault; call once, before (or during) the run."""
        if self.armed:
            raise RuntimeError("fault plan already armed")
        spec = self.job.fabric.spec
        self.plan.validate(spec.num_leaves, spec.num_spines)
        sim = self.job.sim
        for f in self.plan.faults:
            if isinstance(f, CrashSpine):
                sim.schedule_at(f.at_s, self._crash_spine, f.spine)
            elif isinstance(f, FlapFabricLink):
                sim.schedule_at(f.at_s, self._flap_start, f.leaf, f.spine)
                sim.schedule_at(
                    f.at_s + f.down_for_s, self._flap_end, f.leaf, f.spine
                )
            elif isinstance(f, StragglerRack):
                sim.schedule_at(f.at_s, self._straggle_start, f.leaf, f.loss)
                sim.schedule_at(f.at_s + f.down_for_s, self._straggle_end, f.leaf)
            elif isinstance(f, CongestTrunk):
                sim.schedule_at(f.at_s, self._congest_start, f)
            else:  # pragma: no cover - plan.validate catches junk first
                raise TypeError(f"unknown fault {f!r}")
        self.armed = True

    # ------------------------------------------------------------------
    def _crash_spine(self, spine: int) -> None:
        self.job.crash_spine(spine)

    def _flap_start(self, leaf: int, spine: int) -> None:
        up = self.job.fabric.leaf_uplink(leaf, spine)
        down = self.job.fabric.spine_downlink(leaf, spine)
        depth = self._trunk_depth.get((leaf, spine), 0)
        self._trunk_depth[(leaf, spine)] = depth + 1
        if depth == 0:
            self._saved_trunk[(leaf, spine)] = (up.loss, down.loss)
        up.loss = DropAll()
        down.loss = DropAll()

    def _flap_end(self, leaf: int, spine: int) -> None:
        depth = self._trunk_depth[(leaf, spine)] - 1
        self._trunk_depth[(leaf, spine)] = depth
        if depth > 0:
            return  # an overlapping window still holds the trunk down
        up_loss, down_loss = self._saved_trunk.pop((leaf, spine))
        self.job.fabric.leaf_uplink(leaf, spine).loss = up_loss
        self.job.fabric.spine_downlink(leaf, spine).loss = down_loss

    def _straggle_start(self, leaf: int, loss: float) -> None:
        rack = self.job.fabric.leaves[leaf]
        depth = self._rack_depth.get(leaf, 0)
        self._rack_depth[leaf] = depth + 1
        if depth == 0:
            self._saved_rack[leaf] = [
                (up.loss, down.loss)
                for up, down in zip(rack.host_uplinks, rack.host_downlinks)
            ]
        for up, down in zip(rack.host_uplinks, rack.host_downlinks):
            up.loss = BernoulliLoss(loss)
            down.loss = BernoulliLoss(loss)

    def _straggle_end(self, leaf: int) -> None:
        depth = self._rack_depth[leaf] - 1
        self._rack_depth[leaf] = depth
        if depth > 0:
            return  # an overlapping window still degrades the rack
        rack = self.job.fabric.leaves[leaf]
        for (up_loss, down_loss), up, down in zip(
            self._saved_rack.pop(leaf), rack.host_uplinks, rack.host_downlinks
        ):
            up.loss = up_loss
            down.loss = down_loss

    def _congest_start(self, f: CongestTrunk) -> None:
        link = self.job.fabric.leaf_uplink(f.leaf, f.spine)
        period = link.spec.serialization_s(f.frame_bytes) / f.fraction
        self._congest_tick(link, f, period, f.at_s + f.down_for_s)

    def _congest_tick(
        self, link: "Link", f: CongestTrunk, period: float, until: float
    ) -> None:
        sim = self.job.sim
        if sim.now >= until:
            return
        # junk payload: the spine's pipeline has no parser for a None
        # message and discards the frame, so only the wire sees the load
        link.send(Frame(wire_bytes=f.frame_bytes, src="congestor"))
        sim.schedule_at(sim.now + period, self._congest_tick, link, f, period, until)
