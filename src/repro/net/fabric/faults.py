"""Declarative fault injection for fabric jobs.

The fabric analogue of :mod:`repro.controlplane.faults`, covering the
cross-rack failure taxonomy the Clos introduces:

* :class:`CrashSpine` -- a spine dies: program, registers, and local CPU
  gone.  Every trunk through it goes silent at once; if it was homing
  the aggregation, the controller must re-home.
* :class:`FlapFabricLink` -- one leaf-spine trunk drops every frame for
  a window, then heals (a flapping transceiver).  Only that trunk's
  beacons stop; a flap on the active spine's trunk forces a reroute even
  though the spine itself is fine.
* :class:`StragglerRack` -- every host link in one rack turns heavily
  lossy for a window (an overloaded or mis-cabled ToR).  No reroute is
  warranted -- the trunks stay healthy -- but the whole fabric's
  self-clocked streams slow to the straggler's pace, and the run must
  still produce exact sums.

Link faults swap the link's loss model for
:class:`~repro.controlplane.faults.DropAll` (or a heavy Bernoulli) and
restore the original afterwards, composing with any probabilistic loss
already configured -- same layering as the single-rack injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.controlplane.faults import DropAll
from repro.net.loss import BernoulliLoss

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric.job import FabricJob

__all__ = [
    "CrashSpine",
    "FabricFaultInjector",
    "FabricFaultPlan",
    "FlapFabricLink",
    "StragglerRack",
]


@dataclass(frozen=True)
class CrashSpine:
    """Fail-stop ``spine`` at ``at_s`` (no repair; reroute recovers)."""

    spine: int
    at_s: float


@dataclass(frozen=True)
class FlapFabricLink:
    """Both directions of the ``leaf``-``spine`` trunk dead during the
    window."""

    leaf: int
    spine: int
    at_s: float
    down_for_s: float


@dataclass(frozen=True)
class StragglerRack:
    """Every host link of ``leaf`` drops ``loss`` of frames during the
    window."""

    leaf: int
    at_s: float
    down_for_s: float
    loss: float = 0.3


@dataclass
class FabricFaultPlan:
    """An ordered set of fabric faults to inject into one run."""

    faults: list[CrashSpine | FlapFabricLink | StragglerRack] = field(
        default_factory=list
    )

    def add(
        self, fault: CrashSpine | FlapFabricLink | StragglerRack
    ) -> "FabricFaultPlan":
        self.faults.append(fault)
        return self

    def validate(self, num_leaves: int, num_spines: int) -> None:
        for f in self.faults:
            if f.at_s < 0:
                raise ValueError(f"{f} scheduled in the past")
            if isinstance(f, (FlapFabricLink, StragglerRack)) and f.down_for_s <= 0:
                raise ValueError(f"{f} needs a positive outage duration")
            if isinstance(f, (CrashSpine, FlapFabricLink)):
                if not 0 <= f.spine < num_spines:
                    raise ValueError(f"{f} targets unknown spine {f.spine}")
            if isinstance(f, (FlapFabricLink, StragglerRack)):
                if not 0 <= f.leaf < num_leaves:
                    raise ValueError(f"{f} targets unknown leaf {f.leaf}")
            if isinstance(f, StragglerRack) and not 0 < f.loss <= 1:
                raise ValueError(f"{f} loss must be in (0, 1]")


class FabricFaultInjector:
    """Arms a :class:`FabricFaultPlan` on a fabric job's simulator."""

    def __init__(self, job: "FabricJob", plan: FabricFaultPlan):
        self.job = job
        self.plan = plan
        self.armed = False
        self._saved_trunk: dict[tuple[int, int], tuple] = {}
        self._saved_rack: dict[int, list[tuple]] = {}

    def arm(self) -> None:
        """Schedule every fault; call once, before (or during) the run."""
        if self.armed:
            raise RuntimeError("fault plan already armed")
        spec = self.job.fabric.spec
        self.plan.validate(spec.num_leaves, spec.num_spines)
        sim = self.job.sim
        for f in self.plan.faults:
            if isinstance(f, CrashSpine):
                sim.schedule_at(f.at_s, self._crash_spine, f.spine)
            elif isinstance(f, FlapFabricLink):
                sim.schedule_at(f.at_s, self._flap_start, f.leaf, f.spine)
                sim.schedule_at(
                    f.at_s + f.down_for_s, self._flap_end, f.leaf, f.spine
                )
            elif isinstance(f, StragglerRack):
                sim.schedule_at(f.at_s, self._straggle_start, f.leaf, f.loss)
                sim.schedule_at(f.at_s + f.down_for_s, self._straggle_end, f.leaf)
            else:  # pragma: no cover - plan.validate catches junk first
                raise TypeError(f"unknown fault {f!r}")
        self.armed = True

    # ------------------------------------------------------------------
    def _crash_spine(self, spine: int) -> None:
        self.job.crash_spine(spine)

    def _flap_start(self, leaf: int, spine: int) -> None:
        up = self.job.fabric.leaf_uplink(leaf, spine)
        down = self.job.fabric.spine_downlink(leaf, spine)
        self._saved_trunk[(leaf, spine)] = (up.loss, down.loss)
        up.loss = DropAll()
        down.loss = DropAll()

    def _flap_end(self, leaf: int, spine: int) -> None:
        up_loss, down_loss = self._saved_trunk.pop((leaf, spine))
        self.job.fabric.leaf_uplink(leaf, spine).loss = up_loss
        self.job.fabric.spine_downlink(leaf, spine).loss = down_loss

    def _straggle_start(self, leaf: int, loss: float) -> None:
        rack = self.job.fabric.leaves[leaf]
        saved = []
        for up, down in zip(rack.host_uplinks, rack.host_downlinks):
            saved.append((up.loss, down.loss))
            up.loss = BernoulliLoss(loss)
            down.loss = BernoulliLoss(loss)
        self._saved_rack[leaf] = saved

    def _straggle_end(self, leaf: int) -> None:
        rack = self.job.fabric.leaves[leaf]
        for (up_loss, down_loss), up, down in zip(
            self._saved_rack.pop(leaf), rack.host_uplinks, rack.host_downlinks
        ):
            up.loss = up_loss
            down.loss = down_loss
