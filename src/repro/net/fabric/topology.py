"""Clos fabric generation: leaves, spines, and every cable between.

A 2-tier k-ary Clos (spine-leaf) fabric: ``num_leaves`` leaf (ToR)
switches each hosting ``hosts_per_leaf`` workers, fully meshed to
``num_spines`` spine switches.  Built entirely from the shared
:mod:`repro.net.topology` primitives -- :func:`~repro.net.topology.attach_host`
for the rack stars and :func:`~repro.net.topology.connect_switches` for
the leaf-spine trunks -- so link naming, loss-model instantiation, and
RNG substream keying are identical to the single-rack and tree builders.

Port conventions (``m = hosts_per_leaf``):

* leaf ports ``0 .. m-1``    -- workers (port ``c`` = local worker ``c``);
* leaf ports ``m .. m+S-1``  -- uplinks (port ``m + s`` faces spine ``s``);
* spine port ``l``           -- faces leaf ``l``.

The builder only wires; aggregation programs, dataplanes, and the
fabric controller live in :mod:`repro.net.fabric.job` and
:mod:`repro.net.fabric.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.net.host import Host, HostSpec
from repro.net.link import Link, LinkSpec
from repro.net.loss import LossModel, NoLoss
from repro.net.switchchassis import SwitchChassis
from repro.net.topology import attach_host, connect_switches
from repro.sim.engine import Simulator

__all__ = ["ClosFabric", "FabricLeaf", "FabricSpec", "FabricSpine", "build_fabric"]


@dataclass
class FabricSpec:
    """Shape and parts list of a 2-tier Clos fabric."""

    num_leaves: int = 4
    num_spines: int = 2
    hosts_per_leaf: int = 4
    link: LinkSpec = field(default_factory=LinkSpec)
    host: HostSpec = field(default_factory=HostSpec)
    pipeline_latency_s: float = 800e-9
    loss_factory: Callable[[], LossModel] = NoLoss
    leaf_name_prefix: str = "leaf"
    spine_name_prefix: str = "spine"
    host_name_prefix: str = "w"

    def validate(self) -> None:
        if self.num_leaves < 1:
            raise ValueError("a fabric needs at least one leaf")
        if self.num_spines < 1:
            raise ValueError("a fabric needs at least one spine")
        if self.hosts_per_leaf < 1:
            raise ValueError("a leaf needs at least one host")


@dataclass
class FabricLeaf:
    """One built leaf: its rack star plus one trunk per spine."""

    index: int
    switch: SwitchChassis
    hosts: list[Host]
    host_uplinks: list[Link]
    host_downlinks: list[Link]
    #: trunk links indexed by spine: ``uplinks[s]`` carries leaf->spine
    uplinks: list[Link]
    downlinks: list[Link]

    def uplink_port(self, spine: int) -> int:
        """Leaf-switch port of the trunk facing ``spine``."""
        return len(self.hosts) + spine


@dataclass
class FabricSpine:
    """One built spine switch.  ``cpu_alive`` models the switch-local
    control CPU: a crashed spine stops emitting link heartbeats, which is
    how the fabric controller detects it (a dead CPU cannot announce its
    own death)."""

    index: int
    switch: SwitchChassis
    cpu_alive: bool = True


@dataclass
class ClosFabric:
    """A built fabric.  Programs, agents, and control are the caller's."""

    sim: Simulator
    spec: FabricSpec
    leaves: list[FabricLeaf]
    spines: list[FabricSpine]

    @property
    def num_workers(self) -> int:
        return self.spec.num_leaves * self.spec.hosts_per_leaf

    @property
    def hosts(self) -> list[Host]:
        """All hosts in global id order (leaf-major)."""
        return [h for leaf in self.leaves for h in leaf.hosts]

    def leaf_uplink(self, leaf: int, spine: int) -> Link:
        return self.leaves[leaf].uplinks[spine]

    def spine_downlink(self, leaf: int, spine: int) -> Link:
        return self.leaves[leaf].downlinks[spine]

    def trunk_links(self) -> Iterator[tuple[int, int, Link, Link]]:
        """Yield ``(leaf, spine, uplink, downlink)`` for every trunk."""
        for leaf in self.leaves:
            for s in range(self.spec.num_spines):
                yield leaf.index, s, leaf.uplinks[s], leaf.downlinks[s]

    def all_links(self) -> list[Link]:
        links: list[Link] = []
        for leaf in self.leaves:
            links.extend(leaf.host_uplinks)
            links.extend(leaf.host_downlinks)
            links.extend(leaf.uplinks)
            links.extend(leaf.downlinks)
        return links

    def conservation_holds(self) -> bool:
        """Every link satisfies sent == delivered + lost (once idle)."""
        return all(l.stats.conservation_holds() for l in self.all_links())

    def total_frames_lost(self) -> int:
        return sum(l.stats.frames_lost for l in self.all_links())


def build_fabric(sim: Simulator, spec: FabricSpec) -> ClosFabric:
    """Instantiate every switch, host, and cable of the Clos."""
    spec.validate()
    spines = [
        FabricSpine(
            index=s,
            switch=SwitchChassis(
                sim, f"{spec.spine_name_prefix}{s}", spec.pipeline_latency_s
            ),
        )
        for s in range(spec.num_spines)
    ]
    leaves: list[FabricLeaf] = []
    m = spec.hosts_per_leaf
    for l in range(spec.num_leaves):
        switch = SwitchChassis(
            sim, f"{spec.leaf_name_prefix}{l}", spec.pipeline_latency_s
        )
        hosts: list[Host] = []
        host_uplinks: list[Link] = []
        host_downlinks: list[Link] = []
        for c in range(m):
            host, up, down = attach_host(
                sim,
                switch,
                port=c,
                name=f"{spec.host_name_prefix}{l * m + c}",
                host_spec=spec.host,
                link_spec=spec.link,
                loss_factory=spec.loss_factory,
            )
            hosts.append(host)
            host_uplinks.append(up)
            host_downlinks.append(down)
        uplinks: list[Link] = []
        downlinks: list[Link] = []
        for s in range(spec.num_spines):
            up, down = connect_switches(
                sim,
                lower=switch,
                lower_port=m + s,
                upper=spines[s].switch,
                upper_port=l,
                link_spec=spec.link,
                loss_factory=spec.loss_factory,
            )
            uplinks.append(up)
            downlinks.append(down)
        leaves.append(
            FabricLeaf(
                index=l,
                switch=switch,
                hosts=hosts,
                host_uplinks=host_uplinks,
                host_downlinks=host_downlinks,
                uplinks=uplinks,
                downlinks=downlinks,
            )
        )
    return ClosFabric(sim=sim, spec=spec, leaves=leaves, spines=spines)
