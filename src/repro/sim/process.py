"""Generator-based processes on top of the event engine.

The protocol agents in :mod:`repro.core` are callback state machines
(the natural transcription of the paper's "upon receive" pseudocode),
but sequential behaviours -- workload generators, experiment scripts,
background chaos (a link flap, a straggler that sleeps then bursts) --
read far better as coroutines.  A :class:`Process` wraps a generator
that yields simple commands:

* ``yield delay(seconds)``  -- sleep in simulated time;
* ``yield wait(event)``     -- park until a :class:`Signal` fires;
* ``yield`` a ``Signal``    -- shorthand for ``wait``.

Example
-------
>>> from repro.sim.engine import Simulator
>>> from repro.sim.process import Process, delay
>>> sim = Simulator()
>>> out = []
>>> def script():
...     out.append(("start", sim.now))
...     yield delay(2.0)
...     out.append(("end", sim.now))
>>> _ = Process(sim, script())
>>> sim.run()
>>> out
[('start', 0.0), ('end', 2.0)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.sim.engine import Simulator

__all__ = ["Delay", "Process", "Signal", "delay"]


@dataclass(frozen=True)
class Delay:
    """Yield value: advance simulated time by ``seconds``."""

    seconds: float


def delay(seconds: float) -> Delay:
    """Sleep command for process generators."""
    if seconds < 0:
        raise ValueError("cannot sleep for negative time")
    return Delay(seconds)


class Signal:
    """A one-to-many wake-up: processes wait, someone fires.

    Repeatable: after a fire, new waiters park until the next fire.
    The value passed to :meth:`fire` is delivered as the ``yield``'s
    result in every waiting process.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fires = 0

    def wait(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Wake every current waiter (at the current simulated time)."""
        self.fires += 1
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            # schedule rather than call: waiters resume in FIFO order
            # after the firing event completes, never re-entrantly.
            self.sim.schedule(0.0, callback, value)

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Process:
    """Drive a generator as a simulated process.

    The generator may ``return`` a value; it is stored on ``result`` and
    ``done`` becomes True.  Exceptions other than ``StopIteration``
    propagate out of the simulator's event loop (fail fast -- a broken
    experiment script should crash the run, not hang it).
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._generator = generator
        self.done = False
        self.result: Any = None
        self.on_done: Callable[["Process"], None] | None = None
        self.sim.schedule(0.0, self._step, None)

    def _step(self, send_value: Any) -> None:
        if self.done:
            return
        try:
            command = self._generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            if self.on_done is not None:
                self.on_done(self)
            return
        if isinstance(command, Delay):
            self.sim.schedule(command.seconds, self._step, None)
        elif isinstance(command, Signal):
            command.wait(lambda value: self._step(value))
        else:
            raise TypeError(
                f"process {self.name!r} yielded {command!r}; expected "
                "delay(...) or a Signal"
            )
