"""Serial resources: one-at-a-time servers with FIFO queues.

These model everything in the testbed that serializes work:

* a CPU core processing packets run-to-completion (paper SS4: "Every CPU
  core runs an I/O loop that processes every batch of packets in a
  run-to-completion fashion");
* a link's transmitter (serialization delay);
* a parameter-server process aggregating chunks.

A :class:`SerialResource` does not model preemption -- neither does DPDK.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Simulator

__all__ = ["SerialResource"]


class SerialResource:
    """A FIFO serial server.

    Work items occupy the resource for a caller-supplied duration; when an
    item finishes, its completion callback runs and the next queued item
    starts.  The implementation keeps only ``busy_until`` (no explicit
    queue object) because arrival order equals service order and the
    engine's FIFO tie-break preserves it.

    Parameters
    ----------
    sim:
        The simulator supplying the clock.
    name:
        Used in stats and error messages.
    """

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self.busy_until: float = 0.0
        self.jobs_served = 0
        self.busy_time = 0.0

    def submit(
        self,
        duration: float,
        on_done: Callable[..., Any] | None = None,
        *args: Any,
        completion_delay: float = 0.0,
    ) -> float:
        """Enqueue a job of ``duration`` seconds; returns its finish time.

        ``on_done(*args)`` fires at ``finish + completion_delay``.  The
        delay does not occupy the resource -- it models post-processing
        latency (e.g. DPDK I/O batching) without consuming CPU.
        """
        if duration < 0:
            raise ValueError(f"{self.name}: negative duration {duration}")
        sim = self.sim
        now = sim.now
        busy = self.busy_until
        finish = (busy if busy > now else now) + duration
        self.busy_until = finish
        self.jobs_served += 1
        self.busy_time += duration
        if on_done is not None:
            # completion events are never cancelled: use the handle-free
            # fast path (no Event allocation)
            sim.schedule_call_at(finish + completion_delay, on_done, *args)
        return finish

    @property
    def queue_delay(self) -> float:
        """Delay a job submitted right now would wait before starting."""
        return max(0.0, self.busy_until - self.sim.now)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent busy (capped at 1)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SerialResource {self.name} busy_until={self.busy_until:.9f} "
            f"served={self.jobs_served}>"
        )
