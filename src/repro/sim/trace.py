"""Time-bucketed event counters for building timelines.

Paper Figure 6 plots "packets sent per 10 ms" at a representative worker
under several loss rates, distinguishing first transmissions from resends.
:class:`TraceRecorder` is the generic mechanism behind that plot: callers
tick named counters at simulation times; the recorder buckets them.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Bucketed counters keyed by series name.

    Parameters
    ----------
    bucket_seconds:
        Bucket width.  The paper uses 10 ms.
    """

    def __init__(self, bucket_seconds: float = 0.010):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self._counts: dict[str, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._events: list[tuple[float, str]] = []
        self.record_events = False

    def tick(self, series: str, time: float, count: int = 1) -> None:
        """Add ``count`` occurrences to ``series`` at simulated ``time``."""
        bucket = int(time / self.bucket_seconds)
        self._counts[series][bucket] += count
        if self.record_events:
            self._events.append((time, series))

    def series(self, name: str) -> list[tuple[float, int]]:
        """Return ``(bucket_start_time, count)`` pairs, sorted, gaps filled.

        Gap-filling matters for rate plots: a 10 ms window in which nothing
        was sent is a meaningful zero, not a missing point.
        """
        buckets = self._counts.get(name)
        if not buckets:
            return []
        last = max(buckets)
        return [
            (bucket * self.bucket_seconds, buckets.get(bucket, 0))
            for bucket in range(0, last + 1)
        ]

    def total(self, name: str) -> int:
        """Total occurrences recorded for ``series``."""
        return sum(self._counts.get(name, {}).values())

    def names(self) -> list[str]:
        return sorted(self._counts)

    @property
    def events(self) -> list[tuple[float, str]]:
        """Raw (time, series) events; populated only if ``record_events``."""
        return list(self._events)
