"""The event-heap simulator core.

All times are float seconds.  Events scheduled at equal times fire in the
order they were scheduled (FIFO tie-break via a sequence counter), which is
what makes simulations bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

import numpy as np

__all__ = ["Event", "SimulationError", "Simulator"]


class SimulationError(RuntimeError):
    """Raised for scheduling in the past, running a corrupted heap, etc."""


class Event:
    """A handle to a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    (e.g. a retransmission timer cancelled when the response arrives, per
    Algorithm 4's ``cancel_timer``).  Cancellation is O(1): the event stays
    in the heap but is skipped when popped.

    The heap itself stores ``(time, seq, event)`` tuples so ordering uses
    C-level tuple comparison -- the single hottest operation in large
    simulations.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<Event t={self.time:.9f} seq={self.seq} {state} fn={self.fn!r}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed.  Every consumer of randomness asks for a *named*
        substream via :meth:`rng`; the stream is seeded from
        ``(seed, name)`` so adding a new consumer never perturbs the
        randomness seen by existing ones.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._rngs: dict[str, np.random.Generator] = {}
        self.events_processed = 0
        # observability hook (attach_obs); None keeps step() at one
        # extra pointer test per event -- this loop is the hottest in
        # the repo, so the instrumented path is strictly opt-in
        self._obs_events = None
        self._obs_heap = None

    def attach_obs(self, obs) -> None:
        """Report engine activity through a :class:`repro.obs.base.
        Observability` layer: total events fired and a pending-heap
        gauge.  A disabled layer costs nothing (no instruments bound)."""
        if obs is None or not obs.metrics.enabled:
            self._obs_events = None
            self._obs_heap = None
            return
        self._obs_events = obs.metrics.counter(
            "sim_events_total", "simulation events fired"
        )
        self._obs_heap = obs.metrics.gauge(
            "sim_pending_events", "events in the heap (incl. cancelled)"
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            if self._obs_events is not None:
                self._obs_events.inc()
                self._obs_heap.set(len(heap))
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        After running with ``until``, the clock is advanced to ``until``
        even if the last event fired earlier, so repeated windows compose.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            head_time, _seq, head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head_time > until:
                break
            if not self.step():
                break
            fired += 1
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain every event; guard against runaway simulations."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation did not go idle within {max_events} events"
                )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the heap."""
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return the named random substream, creating it on first use."""
        generator = self._rngs.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(name),))
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._rngs[name] = generator
        return generator


def _stable_hash(name: str) -> int:
    """A process-invariant 32-bit hash (``hash()`` is salted per process)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
