"""The event-engine core: a calendar-queue/heap hybrid scheduler.

All times are float seconds.  Events scheduled at equal times fire in the
order they were scheduled (FIFO tie-break via a sequence counter), which is
what makes simulations bit-for-bit reproducible.

Scheduler architecture (see docs/PERFORMANCE.md)
------------------------------------------------
The dominant workload is *schedule-then-cancel*: every packet send arms a
retransmission timer (~100 us .. 1 ms out) that is cancelled when the
response arrives a few microseconds later.  A single binary heap pays
``O(log n)`` on every push and pop for entries that will never fire, so the
engine splits pending events in two:

* a **near heap** holding events inside the current timer-wheel bucket
  (entries are plain tuples; ordering uses C-level tuple comparison);
* a **timer wheel** (calendar queue with dict-of-lists buckets of width
  ``wheel_granularity_s``) holding events at or beyond the bucket horizon.
  Insertion is an O(1) list append; when the clock reaches a bucket it is
  *poured* into the near heap, silently discarding entries cancelled in
  the meantime -- the common fate of retransmission timers, which
  therefore never tax a single ``heappush``/``heappop``.

Because every wheel entry's time is at or beyond the horizon and every
heap entry's time is below it, the heap head is always the global
minimum, and pouring whole buckets in ``(time, seq)`` heap order keeps
event ordering bit-for-bit identical to the single-heap scheduler
(``scheduler="heap"`` keeps the legacy layout; the property tests in
``tests/sim/test_scheduler_equivalence.py`` prove equivalence).

Cancelled entries that do sit in the near heap are removed by periodic
*compaction*: when the dead fraction of all pending entries exceeds
``compact_dead_fraction`` the structures are rebuilt without them,
amortizing to O(1) per cancellation.  ``Simulator.pending`` is a live
counter maintained on schedule/fire/cancel -- O(1), never a heap scan.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

import numpy as np

__all__ = ["Event", "SimulationError", "Simulator"]


class SimulationError(RuntimeError):
    """Raised for scheduling in the past, running a corrupted heap, etc."""


class Event:
    """A handle to a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled
    (e.g. a retransmission timer cancelled when the response arrives, per
    Algorithm 4's ``cancel_timer``).  Cancellation is O(1): the event stays
    in its heap/bucket but is skipped when popped or poured, and the
    engine's live-event counter is decremented immediately.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: "Simulator | None" = None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                # still pending: keep the live counter exact and let the
                # engine decide when lazy deletion warrants a compaction
                self._sim = None
                sim._note_cancel()

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<Event t={self.time:.9f} seq={self.seq} {state} fn={self.fn!r}>"


class _TrainCursor:
    """Walks one frame train: ``fn(items[i])`` fires at ``times[i]``.

    Only the cursor's *current* element occupies a scheduler entry; see
    :meth:`Simulator.schedule_train`.
    """

    __slots__ = ("times", "fn", "items", "i", "seq")

    def __init__(self, times, fn, items, seq):
        self.times = times
        self.fn = fn
        self.items = items
        self.i = 0
        self.seq = seq


#: heap entries are ``(time, seq, event_or_None, fn, args)`` tuples; the
#: unique ``seq`` guarantees tuple comparison never reaches index 2, so
#: cancellable events (an :class:`Event` in slot 2) and anonymous fast
#: entries (``None`` in slot 2) share one heap.
_EVENT = 2
_FN = 3
_ARGS = 4


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed.  Every consumer of randomness asks for a *named*
        substream via :meth:`rng`; the stream is seeded from
        ``(seed, name)`` so adding a new consumer never perturbs the
        randomness seen by existing ones.
    scheduler:
        ``"wheel"`` (default) uses the timer-wheel/heap hybrid;
        ``"heap"`` keeps every entry in the single legacy heap.  Both
        fire the exact same ``(time, seq)`` sequence.
    wheel_granularity_s:
        Bucket width of the timer wheel.  The default (64 us) keeps
        packet-scale events (ns..us apart) in the near heap while
        retransmission timers (>= 100 us out) land in wheel buckets.
    compact_dead_fraction:
        Rebuild the pending structures once cancelled entries exceed this
        fraction of all pending entries (and ``compact_min_dead``).

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    """

    def __init__(
        self,
        seed: int = 0,
        scheduler: str = "wheel",
        wheel_granularity_s: float = 64e-6,
        compact_dead_fraction: float = 0.5,
        compact_min_dead: int = 512,
    ):
        if scheduler not in ("wheel", "heap"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if wheel_granularity_s <= 0:
            raise ValueError("wheel granularity must be positive")
        if not 0.0 < compact_dead_fraction <= 1.0:
            raise ValueError("compact_dead_fraction must be in (0, 1]")
        self.seed = int(seed)
        self.scheduler = scheduler
        self.now: float = 0.0
        self._heap: list[tuple] = []
        # plain int, bumped inline at each schedule site: a counter object
        # (itertools.count) costs a call per event in the hottest paths
        self._seq = 0
        self._rngs: dict[str, np.random.Generator] = {}
        self.events_processed = 0
        # live (scheduled, not yet fired or cancelled) entries -- this is
        # what `pending` reports, in O(1)
        self._live = 0
        # cancelled entries still sitting in the heap or a wheel bucket
        self._dead = 0
        self.compactions = 0
        self._compact_frac = float(compact_dead_fraction)
        self._compact_min = int(compact_min_dead)
        # timer wheel state: bucket index -> list of entries, plus a heap
        # of active bucket indices.  `_horizon_idx` is the first bucket
        # index not yet poured; entries below it go straight to the heap.
        self._gran = float(wheel_granularity_s)
        self._buckets: dict[int, list[tuple]] = {}
        self._bucket_heap: list[int] = []
        self._horizon_idx = 1 if scheduler == "wheel" else None
        # observability hook (attach_obs); None keeps the event loop at
        # one extra pointer test per event -- this loop is the hottest in
        # the repo, so the instrumented path is strictly opt-in
        self._obs_events = None
        self._obs_heap = None

    def attach_obs(self, obs) -> None:
        """Report engine activity through a :class:`repro.obs.base.
        Observability` layer: total events fired and a pending-events
        gauge.  A disabled layer costs nothing (no instruments bound)."""
        if obs is None or not obs.metrics.enabled:
            self._obs_events = None
            self._obs_heap = None
            return
        self._obs_events = obs.metrics.counter(
            "sim_events_total", "simulation events fired"
        )
        self._obs_heap = obs.metrics.gauge(
            "sim_pending_events", "events pending (incl. cancelled)"
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        The body of ``_insert`` is inlined: this path carries every
        retransmission timer (one per packet sent).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args)
        event._sim = self
        self._live += 1
        horizon = self._horizon_idx
        if horizon is not None and int(time / self._gran) >= horizon:
            bucket = int(time / self._gran)
            buckets = self._buckets
            lst = buckets.get(bucket)
            if lst is None:
                buckets[bucket] = [(time, seq, event, fn, args)]
                heapq.heappush(self._bucket_heap, bucket)
            else:
                lst.append((time, seq, event, fn, args))
        else:
            heapq.heappush(self._heap, (time, seq, event, fn, args))
        return event

    # NOTE: schedule_call / schedule_call_at inline the body of `_insert`
    # (and the seq bump): they carry the bulk of the event volume -- one
    # per frame hop -- and a call per insertion is measurable there.

    def schedule_call(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast-path schedule with no cancellation handle.

        The network layers (links, serial resources, switch pipelines)
        schedule one event per frame hop and never cancel them; skipping
        the :class:`Event` allocation removes the largest single
        allocation source in the inner loop.
        """
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        horizon = self._horizon_idx
        bucket = -1 if horizon is None else int(time / self._gran)
        if horizon is not None and bucket >= horizon:
            buckets = self._buckets
            lst = buckets.get(bucket)
            if lst is None:
                buckets[bucket] = [(time, seq, None, fn, args)]
                heapq.heappush(self._bucket_heap, bucket)
            else:
                lst.append((time, seq, None, fn, args))
        else:
            heapq.heappush(self._heap, (time, seq, None, fn, args))

    def schedule_call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_call`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        horizon = self._horizon_idx
        bucket = -1 if horizon is None else int(time / self._gran)
        if horizon is not None and bucket >= horizon:
            buckets = self._buckets
            lst = buckets.get(bucket)
            if lst is None:
                buckets[bucket] = [(time, seq, None, fn, args)]
                heapq.heappush(self._bucket_heap, bucket)
            else:
                lst.append((time, seq, None, fn, args))
        else:
            heapq.heappush(self._heap, (time, seq, None, fn, args))

    def schedule_train(self, times, fn: Callable[..., Any], items) -> None:
        """Schedule ``fn(items[k])`` at ``times[k]`` with ONE pending entry.

        A *frame train* is an ordered batch of callbacks whose fire times
        are already known (e.g. the per-frame dispatch records computed
        by :meth:`repro.net.link.Link.send_train`).  Scheduling them
        individually would push ``len(items)`` entries into the heap at
        once; the train keeps exactly one entry pending -- a cursor that,
        on firing, drains the whole run of elements sharing the current
        fire time through consecutive ``fn`` calls, and re-inserts itself
        at the next (strictly later) time *before* invoking any of them,
        so anything a callback schedules at that later instant still
        fires after the train's next run (matching the per-frame path,
        where all the entries were scheduled up front and therefore carry
        older sequence numbers than callback-spawned events).  Draining a
        same-time run in one event is also what the per-frame path does
        observationally: entries scheduled back-to-back by one event get
        consecutive sequence numbers, so nothing can interleave them.

        The cursor's entry keeps its *creation* sequence number across
        every re-insertion.  Had the entries been scheduled up front,
        they would all carry creation-time seqs; at a fire time shared
        with another train (or any entry scheduled after this call) the
        tie therefore breaks by creation order, not by whenever each
        cursor last happened to advance -- the two orders diverge as soon
        as trains walk different time grids, and the per-frame path
        always uses the former.

        ``times`` must be non-decreasing with ``times[0] >= now`` --
        callers keep submit order for ties, which is exactly the
        ``(time, seq)`` order the per-frame path produces.
        """
        n = len(items)
        if n == 0:
            return
        time = times[0]
        if n == 1:
            self.schedule_call_at(time, fn, items[0])
            return
        if time < self.now:
            raise SimulationError(
                f"cannot schedule train at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        cursor = _TrainCursor(times, fn, items, seq)
        self._live += 1
        horizon = self._horizon_idx
        bucket = -1 if horizon is None else int(time / self._gran)
        if horizon is not None and bucket >= horizon:
            buckets = self._buckets
            lst = buckets.get(bucket)
            if lst is None:
                buckets[bucket] = [(time, seq, None, self._fire_train, (cursor,))]
                heapq.heappush(self._bucket_heap, bucket)
            else:
                lst.append((time, seq, None, self._fire_train, (cursor,)))
        else:
            heapq.heappush(self._heap, (time, seq, None, self._fire_train, (cursor,)))

    def _fire_train(self, cursor: "_TrainCursor") -> None:
        """Fire one same-time run of train elements; re-insert for the next.

        The re-insert happens *before* any callback runs (see
        :meth:`schedule_train` for why that ordering is load-bearing).
        """
        i = cursor.i
        items = cursor.items
        times = cursor.times
        n = len(items)
        t = times[i]
        j = i + 1
        while j < n and times[j] == t:
            j += 1
        if j < n:
            cursor.i = j
            time = times[j]
            # sticky seq: re-insert under the creation-time sequence
            # number (see schedule_train) -- the counter does not advance
            seq = cursor.seq
            self._live += 1
            horizon = self._horizon_idx
            bucket = -1 if horizon is None else int(time / self._gran)
            if horizon is not None and bucket >= horizon:
                buckets = self._buckets
                lst = buckets.get(bucket)
                if lst is None:
                    buckets[bucket] = [(time, seq, None, self._fire_train, (cursor,))]
                    heapq.heappush(self._bucket_heap, bucket)
                else:
                    lst.append((time, seq, None, self._fire_train, (cursor,)))
            else:
                heapq.heappush(
                    self._heap, (time, seq, None, self._fire_train, (cursor,))
                )
        fn = cursor.fn
        fn(items[i])
        for k in range(i + 1, j):
            fn(items[k])

    def _insert(self, entry: tuple) -> None:
        horizon = self._horizon_idx
        if horizon is not None:
            bucket = int(entry[0] / self._gran)
            if bucket >= horizon:
                buckets = self._buckets
                lst = buckets.get(bucket)
                if lst is None:
                    buckets[bucket] = [entry]
                    heapq.heappush(self._bucket_heap, bucket)
                else:
                    lst.append(entry)
                return
        heapq.heappush(self._heap, entry)

    # ------------------------------------------------------------------
    # Internal bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for a still-pending event."""
        self._live -= 1
        dead = self._dead + 1
        self._dead = dead
        if dead >= self._compact_min and dead > self._compact_frac * (
            dead + self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild pending structures without cancelled entries."""
        self._heap = [
            e for e in self._heap if e[_EVENT] is None or not e[_EVENT].cancelled
        ]
        heapq.heapify(self._heap)
        if self._buckets:
            for idx in list(self._buckets):
                kept = [
                    e
                    for e in self._buckets[idx]
                    if e[_EVENT] is None or not e[_EVENT].cancelled
                ]
                if kept:
                    self._buckets[idx] = kept
                else:
                    del self._buckets[idx]
            self._bucket_heap = sorted(self._buckets)
        self._dead = 0
        self.compactions += 1

    def _pour(self) -> bool:
        """Advance the wheel: move the earliest bucket into the heap.

        Returns False when no bucket remains.  Cancelled entries are
        dropped here, never having touched the heap.
        """
        bucket_heap = self._bucket_heap
        heap = self._heap
        while not heap and bucket_heap:
            idx = heapq.heappop(bucket_heap)
            self._horizon_idx = idx + 1
            dropped = 0
            for entry in self._buckets.pop(idx):
                ev = entry[_EVENT]
                if ev is not None and ev.cancelled:
                    dropped += 1
                else:
                    heapq.heappush(heap, entry)
            if dropped:
                self._dead -= dropped
        return bool(heap)

    def _peek_time(self) -> float | None:
        """Time of the next live entry, or None; skips/pours dead ones."""
        heap = self._heap
        while True:
            if not heap and not self._pour():
                return None
            entry = heap[0]
            ev = entry[_EVENT]
            if ev is not None and ev.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            return entry[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        heap = self._heap
        pop = heapq.heappop
        while True:
            if not heap and not self._pour():
                return False
            entry = pop(heap)
            event = entry[_EVENT]
            if event is not None:
                if event.cancelled:
                    self._dead -= 1
                    continue
                event._sim = None  # fired: later cancel() is a no-op
            self.now = entry[0]
            self._live -= 1
            self.events_processed += 1
            if self._obs_events is not None:
                self._obs_events.inc()
                self._obs_heap.set(self._live + self._dead)
            entry[_FN](*entry[_ARGS])
            return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until none remain, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        After running with ``until``, the clock is advanced to ``until``
        even if the last event fired earlier, so repeated windows compose.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                return
            head_time = self._peek_time()
            if head_time is None:
                break
            if until is not None and head_time > until:
                break
            if not self.step():
                break
            fired += 1
        if until is not None and self.now < until:
            self.now = until

    def run_deadline(self, deadline: float) -> None:
        """Fire events until none remain or the clock passes ``deadline``.

        Exactly ``while step(): if now > deadline: break`` -- the event
        that crosses the deadline still fires (jobs use this to bound
        wall-clock on runs that will never complete) -- but with the pop
        loop inlined, saving a method call per event on the hottest loop
        in the repo.
        """
        pop = heapq.heappop
        instrumented = self._obs_events is not None
        # `events_processed` is only read between runs (nothing in src/
        # reads it from inside a callback), so it is accumulated in a
        # local and synced on every exit path; `_live` stays an attribute
        # because Event.cancel updates it concurrently from callbacks.
        fired = 0
        try:
            while True:
                # re-read each iteration: a callback may cancel events and
                # trigger _compact, which rebinds self._heap to a new list
                heap = self._heap
                if not heap and not self._pour():
                    return
                entry = pop(heap)
                event = entry[_EVENT]
                if event is not None:
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    event._sim = None
                time = entry[0]
                self.now = time
                self._live -= 1
                fired += 1
                if instrumented:
                    self._obs_events.inc()
                    self._obs_heap.set(self._live + self._dead)
                entry[_FN](*entry[_ARGS])
                if time > deadline:
                    return
        finally:
            self.events_processed += fired

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Drain every event; guard against runaway simulations."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation did not go idle within {max_events} events"
                )

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still scheduled.  O(1):
        maintained on schedule/fire/cancel, never a heap scan."""
        return self._live

    @property
    def pending_entries(self) -> int:
        """Total entries in the structures, including cancelled ones
        awaiting lazy removal (for tests and capacity gauges)."""
        return self._live + self._dead

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> np.random.Generator:
        """Return the named random substream, creating it on first use."""
        generator = self._rngs.get(name)
        if generator is None:
            seed_seq = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(name),))
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._rngs[name] = generator
        return generator


def _stable_hash(name: str) -> int:
    """A process-invariant 32-bit hash (``hash()`` is salted per process)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
