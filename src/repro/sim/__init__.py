"""Deterministic discrete-event simulation engine.

This package is the clock that everything else in :mod:`repro` runs on.
It provides:

* :class:`~repro.sim.engine.Simulator` -- a classic event-heap simulator
  with cancellable events and named, seeded random substreams.
* :class:`~repro.sim.resources.SerialResource` -- a FIFO serial server used
  to model CPU cores, NIC serialization, and other one-at-a-time resources.
* :class:`~repro.sim.trace.TraceRecorder` -- time-bucketed counters used to
  build packet-rate timelines (paper Figure 6).

Design notes
------------
The engine is callback-based rather than coroutine-based: protocol agents
(workers, switch programs, parameter servers) are event-driven state
machines in the paper as well ("upon receive p", "upon timeout p"), so the
callback style is the most direct transcription of Algorithms 1-4.

Determinism is a hard requirement (DESIGN.md invariant list): two runs with
the same seed must produce identical traces.  Ties in event time are broken
by a monotonically increasing sequence number, and all randomness flows
through named substreams derived from the simulator's root seed.
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import Delay, Process, Signal, delay
from repro.sim.resources import SerialResource
from repro.sim.trace import TraceRecorder

__all__ = [
    "Delay",
    "Event",
    "Process",
    "SerialResource",
    "Signal",
    "SimulationError",
    "Simulator",
    "TraceRecorder",
    "delay",
]
