"""The nine-model benchmark zoo (paper Figure 3 / Table 1).

Parameter counts are the real architectures' (ImageNet, 1000 classes).
Single-GPU throughputs are NVidia P100 numbers consistent with the
paper's Table 1 ideals (ideal = 8 x single-GPU) and the public
TensorFlow benchmark results it cites [55]; they calibrate the
compute:communication ratio that determines each model's speedup.

Gradient-tensor layouts matter for overlap: frameworks reduce one tensor
per layer, output layer first (the order backprop produces them), so
models whose parameters concentrate in late fully-connected layers
(AlexNet, VGG) expose their big transfers early.  ``tensor_sizes``
captures each family's layout coarsely: the real fully-connected sizes
plus a geometric spread of convolution tensors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MODEL_ZOO", "ModelSpec"]


@dataclass(frozen=True)
class ModelSpec:
    """One benchmark model.

    Attributes
    ----------
    params_millions:
        Trainable parameters (= gradient elements per update).
    single_gpu_images_s:
        Images/s of one P100 at ``batch_size``.
    batch_size:
        Per-GPU mini-batch used in the paper's runs (64 for the Table 1
        trio, 128 for the Figure 3 sweep, 512 synthetic for AlexNet).
    fc_sizes_millions:
        Parameter counts of the fully-connected tensors, in backprop
        (output-first) order.
    num_conv_tensors:
        Convolution/BN gradient tensors; sizes spread geometrically over
        the remaining parameters.
    forward_fraction:
        Share of an iteration spent in the forward pass (backprop, which
        overlaps communication, takes the rest).
    """

    name: str
    params_millions: float
    single_gpu_images_s: float
    batch_size: int
    fc_sizes_millions: tuple[float, ...] = ()
    num_conv_tensors: int = 50
    forward_fraction: float = 0.33

    @property
    def num_elements(self) -> int:
        return int(self.params_millions * 1e6)

    @property
    def update_bytes(self) -> int:
        """Model update size at float32."""
        return self.num_elements * 4

    def compute_time_s(self) -> float:
        """Forward+backward time for one mini-batch on one GPU."""
        return self.batch_size / self.single_gpu_images_s

    def tensor_sizes(self) -> list[int]:
        """Gradient tensors in backprop (output-first) order.

        FC tensors first (they sit nearest the output), then conv
        tensors from deep to shallow with geometrically decreasing
        sizes (deep convs have more channels).
        """
        fc = [round(m * 1e6) for m in self.fc_sizes_millions]
        remaining = self.num_elements - sum(fc)
        if remaining < 0:
            raise ValueError(f"{self.name}: FC sizes exceed parameter count")
        sizes = list(fc)
        if self.num_conv_tensors > 0 and remaining > 0:
            ratio = 0.9
            weights = [ratio**i for i in range(self.num_conv_tensors)]
            total = sum(weights)
            conv = [max(1, int(remaining * w / total)) for w in weights]
            # fix rounding drift on the largest tensor
            conv[0] += remaining - sum(conv)
            sizes.extend(conv)
        return sizes

    def ready_times_s(self) -> list[float]:
        """When each gradient tensor becomes available, from iteration
        start, assuming backprop time spreads uniformly over tensors."""
        compute = self.compute_time_s()
        t_forward = self.forward_fraction * compute
        t_backward = compute - t_forward
        sizes = self.tensor_sizes()
        per_tensor = t_backward / len(sizes)
        return [t_forward + per_tensor * (i + 1) for i in range(len(sizes))]


def _spec(
    name: str,
    params: float,
    images_s: float,
    batch: int,
    fc: tuple[float, ...] = (),
    convs: int = 50,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        params_millions=params,
        single_gpu_images_s=images_s,
        batch_size=batch,
        fc_sizes_millions=fc,
        num_conv_tensors=convs,
    )


#: Name -> spec for the paper's nine benchmark models.
MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        # AlexNet: almost all parameters in three FC layers; the paper
        # follows [55]: synthetic data, batch 512.
        _spec("alexnet", 61.1, 2500.0, 512, fc=(4.1, 16.8, 37.7)[::-1], convs=8),
        _spec("googlenet", 7.0, 380.0, 128, fc=(1.02,), convs=57),
        _spec("inception3", 23.8, 141.5, 64, fc=(2.05,), convs=94),
        _spec("inception4", 42.7, 66.0, 64, fc=(1.54,), convs=148),
        _spec("resnet50", 25.6, 229.75, 64, fc=(2.05,), convs=160),
        _spec("resnet101", 44.5, 130.0, 64, fc=(2.05,), convs=312),
        _spec("vgg11", 132.9, 180.0, 128, fc=(4.1, 16.8, 102.8), convs=8),
        _spec("vgg16", 138.3, 147.5, 64, fc=(4.1, 16.8, 102.8), convs=13),
        _spec("vgg19", 143.7, 125.0, 128, fc=(4.1, 16.8, 102.8), convs=16),
    ]
}
