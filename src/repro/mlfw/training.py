"""Iteration-time simulation with compute/communication overlap.

The paper's integration (Appendix B) starts reducing a layer's gradient
tensor as soon as backprop emits it, while earlier layers are still
computing -- "communication can start on the output layer's gradients
while the other gradients are still being computed, partially
overlapping communication with computation".

The model here: backprop produces tensors at the zoo's ready times; the
communication engine is a serial pipeline (SwitchML's stream manager
reduces tensors "independently but sequentially"; rings behave the
same): each tensor's reduction starts at ``max(ready, previous
reduction's end)`` and runs for its strategy TAT divided by the
training-path utilization (framework hand-off, GPU<->host copies --
calibrated against Table 1, see :class:`CostParams`).  Iteration time is
when both compute and the last reduction have finished, plus a small
synchronization overhead.
"""

from __future__ import annotations

from repro.collectives.base import CostParams, DEFAULT_COST_PARAMS, Strategy
from repro.collectives.models import tat_for
from repro.mlfw.zoo import MODEL_ZOO, ModelSpec

__all__ = ["iteration_time", "training_speedup", "training_throughput"]


def _resolve(model: ModelSpec | str) -> ModelSpec:
    if isinstance(model, ModelSpec):
        return model
    try:
        return MODEL_ZOO[model]
    except KeyError:
        raise KeyError(
            f"unknown model {model!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


def iteration_time(
    model: ModelSpec | str,
    strategy: Strategy,
    num_workers: int,
    rate_gbps: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Seconds per training iteration on ``num_workers`` machines."""
    spec = _resolve(model)
    compute = spec.compute_time_s()
    if num_workers == 1:
        # single-machine training has no gradient exchange; frameworks
        # skip the all-reduce entirely.
        return compute * (1.0 + params.sync_overhead_frac)
    utilization = params.training_utilization.get(strategy.value, 0.5)
    sizes = spec.tensor_sizes()
    # Imperfect framework overlap compresses the usable backprop window:
    # with overlap_efficiency = 1 reductions start the moment backprop
    # emits a tensor; with 0 they all wait for the full backward pass.
    ready = [
        compute - params.overlap_efficiency * (compute - t)
        for t in spec.ready_times_s()
    ]

    comm_end = 0.0
    for size, t_ready in zip(sizes, ready):
        tat = tat_for(strategy, size, num_workers, rate_gbps, params)
        comm_time = tat / utilization + params.per_tensor_overhead_s
        comm_end = max(t_ready, comm_end) + comm_time
    return max(compute, comm_end) * (1.0 + params.sync_overhead_frac)


def training_throughput(
    model: ModelSpec | str,
    strategy: Strategy,
    num_workers: int,
    rate_gbps: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Cluster training throughput in images/s (Table 1's metric)."""
    spec = _resolve(model)
    iteration = iteration_time(spec, strategy, num_workers, rate_gbps, params)
    return num_workers * spec.batch_size / iteration


def ideal_throughput(model: ModelSpec | str, num_workers: int) -> float:
    """Table 1's "Ideal": n times the single-GPU throughput."""
    spec = _resolve(model)
    return num_workers * spec.single_gpu_images_s


def training_speedup(
    model: ModelSpec | str,
    strategy: Strategy,
    baseline: Strategy,
    num_workers: int,
    rate_gbps: float,
    params: CostParams = DEFAULT_COST_PARAMS,
) -> float:
    """Throughput of ``strategy`` over ``baseline`` (Figure 3's metric,
    with ``baseline = Strategy.NCCL``)."""
    top = training_throughput(model, strategy, num_workers, rate_gbps, params)
    bottom = training_throughput(model, baseline, num_workers, rate_gbps, params)
    return top / bottom
