"""Synthetic datasets for the real-training experiments.

The paper's accuracy study (Figure 10) trains on ImageNet/CIFAR10; the
substitution (DESIGN.md SS1) is a synthetic multi-class problem whose
quantized-SGD behaviour exercises the same mechanism: gradients with a
bounded dynamic range, aggregated as scaled integers, with a scaling
factor that can be too small (updates round to zero), right (plateau of
full accuracy), or too large (integer overflow wrecks the sum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "make_classification"]


@dataclass
class Dataset:
    """Features/labels with a held-out validation split."""

    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    num_classes: int

    def shard(self, num_workers: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Partition training data across workers (data parallelism)."""
        xs = np.array_split(self.train_x, num_workers)
        ys = np.array_split(self.train_y, num_workers)
        return list(zip(xs, ys))


def make_classification(
    num_samples: int = 2000,
    num_features: int = 20,
    num_classes: int = 4,
    class_sep: float = 2.0,
    val_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """Gaussian-blob multi-class data, linearly separable-ish.

    Class centres sit on random directions scaled by ``class_sep``;
    features have unit noise.  Deterministic given the seed.
    """
    if num_samples < num_classes * 4:
        raise ValueError("need at least a few samples per class")
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(num_classes, num_features))
    centres *= class_sep / np.linalg.norm(centres, axis=1, keepdims=True)
    labels = rng.integers(0, num_classes, size=num_samples)
    features = centres[labels] + rng.normal(size=(num_samples, num_features))

    # shuffle, then split
    order = rng.permutation(num_samples)
    features, labels = features[order], labels[order]
    n_val = int(num_samples * val_fraction)
    return Dataset(
        train_x=features[n_val:],
        train_y=labels[n_val:],
        val_x=features[:n_val],
        val_y=labels[:n_val],
        num_classes=num_classes,
    )
