"""Iteration-complexity study (SS3.7 / Appendix C).

The paper's accuracy claim is two-sided: SwitchML's quantization "allows
training to similar accuracy in a similar number of iterations as an
unquantized network", whereas the lossy compression literature trades
bandwidth for "worse iteration complexity bounds" (more rounds to the
same loss).  This module measures both sides: train until a target
validation accuracy and count the epochs each aggregation scheme needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mlfw.datasets import Dataset
from repro.mlfw.realtrain import train_mlp

__all__ = ["ConvergenceResult", "epochs_to_accuracy"]


@dataclass
class ConvergenceResult:
    """How fast one aggregation scheme reached the target."""

    target_accuracy: float
    epochs: int | None  # None = never reached within the budget
    final_accuracy: float
    history: list[float]

    @property
    def reached(self) -> bool:
        return self.epochs is not None


def epochs_to_accuracy(
    dataset: Dataset,
    target_accuracy: float,
    aggregator=None,
    max_epochs: int = 40,
    num_workers: int = 4,
    seed: int = 0,
    **train_kwargs,
) -> ConvergenceResult:
    """Epochs of data-parallel SGD until validation accuracy >= target.

    Runs one full training (deterministic per seed) and reads the first
    epoch whose recorded accuracy clears the bar -- identical dynamics to
    stopping early, since the loop state does not depend on evaluations.
    """
    if not 0 < target_accuracy <= 1:
        raise ValueError("target accuracy must be in (0, 1]")
    result = train_mlp(
        dataset,
        num_workers=num_workers,
        aggregator=aggregator,
        epochs=max_epochs,
        seed=seed,
        **train_kwargs,
    )
    epochs = None
    for index, accuracy in enumerate(result.accuracy_history):
        if accuracy >= target_accuracy:
            epochs = index + 1
            break
    return ConvergenceResult(
        target_accuracy=target_accuracy,
        epochs=epochs,
        final_accuracy=result.val_accuracy,
        history=result.accuracy_history,
    )
