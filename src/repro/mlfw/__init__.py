"""ML framework substrate.

The paper evaluates SwitchML by training nine CNNs (TensorFlow benchmark
suite [56]) on a GPU cluster.  We replace the GPUs and frameworks with:

* :mod:`repro.mlfw.zoo` -- the nine benchmark models with real parameter
  counts, per-layer gradient-tensor layouts, and single-GPU throughputs
  calibrated to the paper's Table 1 / the public benchmark numbers [55];
* :mod:`repro.mlfw.training` -- a compute/communication-overlap
  iteration-time simulator reproducing Horovod-style training: backprop
  emits gradient tensors output-layer-first and the all-reduce engine
  consumes them in order while compute continues;
* :mod:`repro.mlfw.datasets` + :mod:`repro.mlfw.realtrain` -- an actual
  (numpy) MLP trained with data-parallel SGD whose gradient aggregation
  runs through the real quantization and integer-summation path --
  including, optionally, packet by packet through the simulated switch
  -- used for the Figure 10 scaling-factor study.
"""

from repro.mlfw.datasets import make_classification
from repro.mlfw.realtrain import (
    ExactAggregator,
    QuantizedAggregator,
    SwitchMLSimAggregator,
    train_mlp,
)
from repro.mlfw.training import (
    iteration_time,
    training_throughput,
    training_speedup,
)
from repro.mlfw.zoo import MODEL_ZOO, ModelSpec

__all__ = [
    "ExactAggregator",
    "MODEL_ZOO",
    "ModelSpec",
    "QuantizedAggregator",
    "SwitchMLSimAggregator",
    "iteration_time",
    "make_classification",
    "train_mlp",
    "training_speedup",
    "training_throughput",
]
