"""Actual data-parallel training through the quantized aggregation path.

This is the Figure 10 machinery: a small numpy MLP trained with
synchronous data-parallel SGD where the gradient aggregation runs
through pluggable aggregators:

* :class:`ExactAggregator` -- float summation (the no-quantization
  reference line of Figure 10);
* :class:`QuantizedAggregator` -- the SwitchML arithmetic exactly:
  per-worker ``round(f * g)`` with int32 saturation (the x86
  ``cvtps2dq`` behaviour), integer summation with 32-bit *wraparound*
  (the switch register ALU), then ``/ f`` -- so a too-large ``f``
  really overflows and wrecks training, and a too-small one rounds
  updates to zero;
* :class:`SwitchMLSimAggregator` -- the same, but every gradient
  actually travels packet by packet through the simulated switch via
  :class:`~repro.core.job.SwitchMLJob` (used by the end-to-end
  integration tests).

``train_mlp`` runs the loop and reports validation accuracy, which the
Figure 10 bench sweeps over scaling factors to reproduce the
plateau-with-cliffs shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mlfw.datasets import Dataset
from repro.quant.fixedpoint import quantize

__all__ = [
    "ExactAggregator",
    "QuantizedAggregator",
    "SwitchMLSimAggregator",
    "TrainResult",
    "train_mlp",
]

_INT32_SPAN = 2**32
_INT32_HALF = 2**31


def _wrap_int32(values: np.ndarray) -> np.ndarray:
    """Two's-complement 32-bit wraparound, as the switch ALU does."""
    return ((values + _INT32_HALF) % _INT32_SPAN) - _INT32_HALF


class ExactAggregator:
    """Float summation -- the unquantized reference."""

    def __call__(self, gradients: list[np.ndarray]) -> np.ndarray:
        return np.sum(gradients, axis=0)


class QuantizedAggregator:
    """SwitchML's fixed-point arithmetic, bit-faithful.

    Per-worker scale-and-round saturates at int32 (worker-side vector
    conversion); the summation wraps at 32 bits (switch registers).
    """

    def __init__(self, scaling_factor: float):
        if scaling_factor <= 0:
            raise ValueError("scaling factor must be positive")
        self.scaling_factor = scaling_factor

    def __call__(self, gradients: list[np.ndarray]) -> np.ndarray:
        total = np.zeros_like(gradients[0], dtype=np.int64)
        for g in gradients:
            total = _wrap_int32(total + quantize(g, self.scaling_factor, strict=False))
        return total.astype(np.float64) / self.scaling_factor


class SwitchMLSimAggregator:
    """Quantized aggregation through the packet-level switch simulator.

    Every call quantizes the per-worker gradients and runs a full
    SwitchML all-reduce on the simulated rack -- packets, slots, shadow
    copies and (if the job is configured with loss) retransmissions.
    """

    def __init__(self, job, scaling_factor: float):
        from repro.core.job import SwitchMLJob  # local import avoids a cycle

        if not isinstance(job, SwitchMLJob):
            raise TypeError("job must be a SwitchMLJob")
        if scaling_factor <= 0:
            raise ValueError("scaling factor must be positive")
        self.job = job
        self.scaling_factor = scaling_factor
        self.rounds = 0

    def __call__(self, gradients: list[np.ndarray]) -> np.ndarray:
        quantized = [quantize(g, self.scaling_factor, strict=False) for g in gradients]
        outcome = self.job.all_reduce(quantized, verify=False)
        if not outcome.completed:
            raise RuntimeError("simulated all-reduce did not complete")
        self.rounds += 1
        result = outcome.results[0]
        assert result is not None
        return _wrap_int32(result).astype(np.float64) / self.scaling_factor


@dataclass
class TrainResult:
    """Outcome of one training run."""

    val_accuracy: float
    accuracy_history: list[float] = field(default_factory=list)
    diverged: bool = False


class _MLP:
    """One-hidden-layer ReLU MLP with softmax cross-entropy."""

    def __init__(self, num_features: int, hidden: int, num_classes: int, seed: int):
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / num_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.shapes = [
            (num_features, hidden),
            (hidden,),
            (hidden, num_classes),
            (num_classes,),
        ]
        self.params = np.concatenate(
            [
                (rng.normal(size=self.shapes[0]) * scale1).ravel(),
                np.zeros(hidden),
                (rng.normal(size=self.shapes[2]) * scale2).ravel(),
                np.zeros(num_classes),
            ]
        )

    def _unpack(self, flat: np.ndarray) -> list[np.ndarray]:
        out, cursor = [], 0
        for shape in self.shapes:
            size = int(np.prod(shape))
            out.append(flat[cursor : cursor + size].reshape(shape))
            cursor += size
        return out

    def gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mean cross-entropy gradient over the batch, flattened."""
        w1, b1, w2, b2 = self._unpack(self.params)
        z1 = x @ w1 + b1
        h = np.maximum(z1, 0.0)
        logits = h @ w2 + b2
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        delta = probs
        delta[np.arange(len(y)), y] -= 1.0
        delta /= len(y)
        grad_w2 = h.T @ delta
        grad_b2 = delta.sum(axis=0)
        back = (delta @ w2.T) * (z1 > 0)
        grad_w1 = x.T @ back
        grad_b1 = back.sum(axis=0)
        return np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        w1, b1, w2, b2 = self._unpack(self.params)
        h = np.maximum(x @ w1 + b1, 0.0)
        logits = h @ w2 + b2
        return float((logits.argmax(axis=1) == y).mean())


def train_mlp(
    dataset: Dataset,
    num_workers: int = 4,
    aggregator=None,
    epochs: int = 20,
    batch_size: int = 32,
    learning_rate: float = 0.2,
    hidden: int = 32,
    seed: int = 0,
) -> TrainResult:
    """Synchronous data-parallel SGD on a small MLP.

    Each worker computes the gradient of its own shard's mini-batch;
    the ``aggregator`` combines the per-worker gradients into (an
    approximation of) their sum, which is averaged and applied --
    exactly the paper's SS2.1 iteration.
    """
    if aggregator is None:
        aggregator = ExactAggregator()
    shards = dataset.shard(num_workers)
    model = _MLP(dataset.train_x.shape[1], hidden, dataset.num_classes, seed)
    rng = np.random.default_rng(seed + 1)
    history: list[float] = []
    diverged = False

    for _ in range(epochs):
        batches = min(len(x) for x, _ in shards) // batch_size
        for b in range(max(1, batches)):
            gradients = []
            for x, y in shards:
                pick = rng.integers(0, len(x), size=min(batch_size, len(x)))
                gradients.append(model.gradient(x[pick], y[pick]))
            aggregate = aggregator(gradients)
            if not np.isfinite(aggregate).all():
                diverged = True
                break
            model.params -= learning_rate * aggregate / num_workers
            if not np.isfinite(model.params).all():
                diverged = True
                break
        history.append(model.accuracy(dataset.val_x, dataset.val_y))
        if diverged:
            break

    return TrainResult(
        val_accuracy=history[-1] if history else 0.0,
        accuracy_history=history,
        diverged=diverged,
    )
