"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli experiment table1
    python -m repro.cli experiment fig4 --json
    python -m repro.cli allreduce --workers 8 --rate 10 --mbytes 4
    python -m repro.cli resources --pool 512
    python -m repro.cli bench --out BENCH.json --baseline BENCH_0004.json
    python -m repro.cli obs trace --out runs/trace
    python -m repro.cli obs dashboard --scenario worker-crash

Each ``experiment`` subcommand prints the same rows/series the paper's
table or figure reports (see EXPERIMENTS.md for the recorded runs);
``--json`` emits the raw rows instead of the rendered table.  The
``obs`` group runs instrumented deployments: ``trace`` exports a
Perfetto-loadable Chrome trace plus JSONL events, ``metrics`` dumps the
registry, ``dashboard`` prints the unified post-run report (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.collectives.models import line_rate_ate
from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tuning import pool_size_for_rate
from repro.dataplane.pipeline import TOFINO
from repro.harness import experiments as E
from repro.harness.figures import bar_chart, line_plot, sparkline
from repro.harness.report import format_series, format_table
from repro.net.link import LinkSpec

__all__ = ["main"]


def _print_table1() -> None:
    rows = E.table1()
    print(
        format_table(
            ["model", "ideal", "multi-gpu", "nccl", "switchml"],
            [
                [
                    r["model"],
                    f"{r['ideal']:.0f}",
                    f"{r['multi_gpu']:.0f} ({r['multi_gpu_pct']:.1f}%)",
                    f"{r['nccl']:.0f} ({r['nccl_pct']:.1f}%)",
                    f"{r['switchml']:.0f} ({r['switchml_pct']:.1f}%)",
                ]
                for r in rows
            ],
            title="Table 1: training throughput (images/s), 8 workers, 10 Gbps",
        )
    )


def _print_fig2() -> None:
    rows = E.fig2_pool_size()
    print(
        format_table(
            ["pool size", "TAT (ms)", "line-rate TAT (ms)", "RTT (us)"],
            [
                [r["pool_size"], f"{r['tat_s'] * 1e3:.3f}",
                 f"{r['line_rate_tat_s'] * 1e3:.3f}",
                 f"{r['mean_rtt_s'] * 1e6:.1f}"]
                for r in rows
            ],
            title="Figure 2: pool size sweep (packet simulator)",
        )
    )


def _print_fig3() -> None:
    rows = E.fig3_speedups()
    print(
        format_table(
            ["model", "speedup @10G", "speedup @100G"],
            [[r["model"], f"{r['speedup_10g']:.2f}x", f"{r['speedup_100g']:.2f}x"]
             for r in rows],
            title="Figure 3: SwitchML speedup over NCCL",
        )
    )


def _print_fig4() -> None:
    rows = E.fig4_microbench()

    def fmt(v):
        return "-" if v is None else f"{v / 1e6:.0f}M"

    print(
        format_table(
            ["rate", "workers", "switchml", "gloo", "nccl", "ded.PS",
             "colo.PS", "line(sw)"],
            [
                [f"{r['rate_gbps']:g}G", r["workers"], fmt(r["switchml"]),
                 fmt(r["gloo"]), fmt(r["nccl"]), fmt(r["dedicated_ps"]),
                 fmt(r["colocated_ps"]), fmt(r["line_rate_switchml"])]
                for r in rows
            ],
            title="Figure 4: ATE/s by strategy",
        )
    )


def _print_fig5() -> None:
    rows = E.fig5_loss_inflation()
    print(
        format_table(
            ["loss", "SwitchML", "Gloo", "NCCL"],
            [[f"{r['loss']:.2%}", f"{r['switchml_inflation']:.2f}x",
              f"{r['gloo_inflation']:.2f}x", f"{r['nccl_inflation']:.2f}x"]
             for r in rows],
            title="Figure 5: TAT inflation under loss",
        )
    )


def _print_fig6() -> None:
    out = E.fig6_timeline()
    for loss, data in out.items():
        print(f"loss {loss:.2%}: TAT {data['tat_s'] * 1e3:.3f} ms")
        print("  " + format_series("sent", data["sent"][:15]))
        if sum(c for _, c in data["resent"]):
            print("  " + format_series("resent", data["resent"][:15]))


def _print_fig7() -> None:
    rows = E.fig7_mtu()
    print(
        format_table(
            ["tensor", "SwitchML", "SwitchML(MTU)", "Ded.PS(MTU)"],
            [[f"{r['tensor_mb']} MB", f"{r['switchml_tat_s'] * 1e3:.0f} ms",
              f"{r['switchml_mtu_tat_s'] * 1e3:.0f} ms",
              f"{r['dedicated_ps_mtu_tat_s'] * 1e3:.0f} ms"]
             for r in rows],
            title="Figure 7: small frames vs MTU",
        )
    )


def _print_fig8() -> None:
    rows = E.fig8_datatypes()
    print(
        format_table(
            ["dtype", "SwitchML TAT", "Gloo TAT"],
            [[r["dtype"], f"{r['switchml_tat_s'] * 1e3:.0f} ms",
              f"{r['gloo_tat_s'] * 1e3:.0f} ms"] for r in rows],
            title="Figure 8: data types (100 MB, 10 Gbps)",
        )
    )


def _print_fig10() -> None:
    rows = E.fig10_quantization()
    print(
        format_table(
            ["scaling factor", "accuracy", "diverged"],
            [["reference" if r["scaling_factor"] is None
              else f"{r['scaling_factor']:.0e}",
              f"{r['accuracy']:.3f}", r["diverged"]] for r in rows],
            title="Figure 10: accuracy vs scaling factor",
        )
    )


def _print_resources(pool: int | None) -> None:
    pools = (pool,) if pool else (128, 512)
    rows = E.switch_resources(pool_sizes=tuple(pools))
    print(
        format_table(
            ["pool", "value SRAM (KB)", "total (KB)", "of pipeline", "stages"],
            [[r["pool_size"], f"{r['value_sram_kb']:.0f}",
              f"{r['total_sram_kb']:.1f}", f"{r['sram_fraction']:.3%}",
              f"{r['stages']}/{TOFINO.num_stages}"] for r in rows],
            title="SS5.5: switch resources",
        )
    )


def _plot_fig2() -> None:
    rows = E.fig2_pool_size()
    print(
        line_plot(
            {
                "TAT (ms)": [(r["pool_size"], r["tat_s"] * 1e3) for r in rows],
                "RTT (us)": [(r["pool_size"], r["mean_rtt_s"] * 1e6) for r in rows],
            },
            title="Figure 2: pool size vs TAT and RTT (log-log)",
            log_x=True, log_y=True,
        )
    )


def _plot_fig3() -> None:
    rows = E.fig3_speedups()
    print(
        bar_chart(
            [r["model"] for r in rows],
            [r["speedup_10g"] for r in rows],
            title="Figure 3: speedup over NCCL at 10 Gbps",
            unit="x",
        )
    )


def _plot_fig5() -> None:
    rows = E.fig5_loss_inflation()
    print(
        line_plot(
            {
                "SwitchML": [(r["loss"], r["switchml_inflation"]) for r in rows],
                "Gloo": [(r["loss"], r["gloo_inflation"]) for r in rows],
            },
            title="Figure 5: TAT inflation vs loss (log-log)",
            log_x=True, log_y=True,
        )
    )


def _plot_fig6() -> None:
    out = E.fig6_timeline()
    print("Figure 6: packets per bucket at worker 0 (intensity strips)")
    for loss, data in out.items():
        strip = sparkline([c for _, c in data["sent"]], width=60)
        print(f"  loss {loss:6.2%} |{strip}| TAT {data['tat_s'] * 1e3:.2f} ms")


def _plot_fig10() -> None:
    rows = [r for r in E.fig10_quantization() if r["scaling_factor"]]
    print(
        line_plot(
            {"accuracy": [(r["scaling_factor"], max(r["accuracy"], 1e-3))
                           for r in rows]},
            title="Figure 10: accuracy vs scaling factor (log x)",
            log_x=True,
        )
    )


_FIGURES = {
    "fig2": _plot_fig2,
    "fig3": _plot_fig3,
    "fig5": _plot_fig5,
    "fig6": _plot_fig6,
    "fig10": _plot_fig10,
}


_EXPERIMENTS = {
    "table1": _print_table1,
    "fig2": _print_fig2,
    "fig3": _print_fig3,
    "fig4": _print_fig4,
    "fig5": _print_fig5,
    "fig6": _print_fig6,
    "fig7": _print_fig7,
    "fig8": _print_fig8,
    "fig10": _print_fig10,
}

#: the raw rows behind each experiment, for ``--json``
_EXPERIMENT_DATA = {
    "table1": E.table1,
    "fig2": E.fig2_pool_size,
    "fig3": E.fig3_speedups,
    "fig4": E.fig4_microbench,
    "fig5": E.fig5_loss_inflation,
    "fig6": E.fig6_timeline,
    "fig7": E.fig7_mtu,
    "fig8": E.fig8_datatypes,
    "fig10": E.fig10_quantization,
}


def _json_default(obj):
    """Coerce numpy scalars/arrays for ``json.dumps``."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _emit_json(data) -> None:
    print(json.dumps(data, indent=2, default=_json_default))


def _cmd_allreduce(args: argparse.Namespace) -> None:
    rate = args.rate
    n_elem = int(args.mbytes * 1e6 / 4)
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=args.workers,
            pool_size=pool_size_for_rate(rate),
            link=LinkSpec(rate_gbps=rate),
            seed=args.seed,
        )
    )
    out = job.all_reduce(num_elements=n_elem, verify=False)
    ate = out.aggregated_elements_per_second(n_elem)
    if getattr(args, "json", False):
        _emit_json({
            "workers": args.workers,
            "rate_gbps": rate,
            "tensor_mbytes": args.mbytes,
            "tat_s": out.max_tat,
            "ate_per_s": ate,
            "line_rate_fraction": ate / line_rate_ate(rate),
            "mean_rtt_s": out.mean_rtt,
            "retransmissions": out.retransmissions,
            "frames_lost": out.frames_lost,
        })
        return
    print(f"{args.workers} workers, {rate:g} Gbps, {args.mbytes:g} MB tensor")
    print(f"TAT {out.max_tat * 1e3:.3f} ms | ATE/s {ate / 1e6:.1f}M "
          f"({ate / line_rate_ate(rate):.1%} of line rate) | "
          f"mean RTT {out.mean_rtt * 1e6:.1f} us")


def _cmd_violin(args: argparse.Namespace) -> None:
    from repro.harness.distributions import measure_tat_distribution
    from repro.net.loss import BernoulliLoss

    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=args.workers,
            pool_size=pool_size_for_rate(args.rate),
            timeout_s=1e-4,
            link=LinkSpec(rate_gbps=args.rate),
            loss_factory=lambda: BernoulliLoss(args.loss),
        )
    )
    dist = measure_tat_distribution(
        job, num_elements=int(args.mbytes * 1e6 / 4),
        repetitions=args.repetitions,
    )
    print(f"{args.repetitions} aggregations of {args.mbytes:g} MB on "
          f"{args.workers} x {args.rate:g} Gbps (loss {args.loss:.2%})")
    print(f"TAT {dist.summary()}")
    print(dist.violin())


def _cmd_faults(args: argparse.Namespace) -> None:
    """Run a controller-managed all-reduce through one fault scenario."""
    from repro.controlplane import (
        ControlPlaneConfig,
        Controller,
        CrashWorker,
        FaultInjector,
        FaultPlan,
        FlapLink,
        RebootSwitch,
    )
    from repro.harness.telemetry import control_plane_summary

    ctl = Controller(
        ControlPlaneConfig(num_workers=args.workers, pool_size=args.pool,
                           seed=args.seed)
    )
    at = args.at_ms * 1e-3
    down = args.down_ms * 1e-3
    if args.scenario == "worker-crash":
        plan = FaultPlan([CrashWorker(member=args.member, at_s=at)])
    elif args.scenario == "switch-reboot":
        plan = FaultPlan([RebootSwitch(at_s=at, down_for_s=down)])
    else:  # link-flap
        plan = FaultPlan([FlapLink(member=args.member, at_s=at,
                                   down_for_s=down)])
    FaultInjector(ctl, plan).arm()

    n_elem = int(args.mbytes * 1e6 / 4)
    rng = np.random.default_rng(args.seed)
    tensors = [rng.integers(-100, 100, n_elem).astype(np.int64)
               for _ in range(args.workers)]
    result = ctl.run_collective(tensors, deadline_s=5.0)

    print(f"scenario {args.scenario}: {args.workers} workers, "
          f"{args.mbytes:g} MB tensor, fault at {args.at_ms:g} ms")
    print(f"completed={result.completed} survivors={result.survivors} "
          f"epoch={result.epoch} elapsed={result.elapsed_s * 1e3:.3f} ms")
    print(control_plane_summary(ctl))


def _cmd_fabric(args: argparse.Namespace) -> int:
    """Run one all-reduce on a controller-supervised 2-tier Clos."""
    from repro.net.fabric import (
        CrashSpine,
        FabricConfig,
        FabricFaultInjector,
        FabricFaultPlan,
        FabricJob,
        FlapFabricLink,
        StragglerRack,
        fabric_summary,
    )
    from repro.net.loss import BernoulliLoss, NoLoss
    from repro.obs import Observability

    job = FabricJob(
        FabricConfig(
            num_leaves=args.leaves,
            num_spines=args.spines,
            workers_per_leaf=args.workers_per_leaf,
            pool_size=args.pool,
            loss_factory=(lambda: BernoulliLoss(args.loss))
            if args.loss
            else NoLoss,
            obs=Observability(tracing_enabled=False),
            seed=args.seed,
        )
    )
    at = args.at_ms * 1e-3
    down = args.down_ms * 1e-3
    plan = FabricFaultPlan()
    initial_active = job.active_spine
    spine = initial_active if args.spine is None else args.spine
    if args.scenario == "spine-crash":
        plan.add(CrashSpine(spine=spine, at_s=at))
    elif args.scenario == "link-flap":
        plan.add(FlapFabricLink(leaf=args.leaf, spine=spine, at_s=at,
                                down_for_s=down))
    elif args.scenario == "straggler":
        plan.add(StragglerRack(leaf=args.leaf, at_s=at, down_for_s=down))
    if plan.faults:
        FabricFaultInjector(job, plan).arm()

    n_elem = args.elements or int(args.mbytes * 1e6 / 4)
    rng = np.random.default_rng(args.seed)
    tensors = [rng.integers(-100, 100, n_elem).astype(np.int64)
               for _ in range(job.config.num_workers)]
    result = job.all_reduce(tensors, deadline_s=args.deadline_s)

    if args.json:
        _emit_json({
            "leaves": args.leaves,
            "spines": args.spines,
            "workers": job.config.num_workers,
            "scenario": args.scenario,
            "completed": result.completed,
            "state": result.state,
            "epoch": result.epoch,
            "reroutes": [
                {
                    "cause": r.cause,
                    "from_spine": r.from_spine,
                    "to_spine": r.to_spine,
                    "epoch_after": r.epoch_after,
                    "resumed_from_element": r.resumed_from_element,
                    "recovery_s": r.recovery_time,
                    "detection_s": r.detection_lag,
                }
                for r in result.reroutes
            ],
            "stale_epoch_drops": result.stale_epoch_drops,
            "retransmissions": result.retransmissions,
            "max_tat_s": result.max_tat if result.completed else None,
            "elapsed_s": result.elapsed_s,
        })
    else:
        print(f"scenario {args.scenario}: {args.leaves}x{args.spines} Clos, "
              f"{job.config.num_workers} workers, {n_elem} elements, "
              f"fault at {args.at_ms:g} ms")
        print(f"completed={result.completed} epoch={result.epoch} "
              f"reroutes={len(result.reroutes)} "
              f"elapsed={result.elapsed_s * 1e3:.3f} ms")
        if args.dashboard:
            print(job.dashboard().summary())
        else:
            print(fabric_summary(job))

    if args.check_recovery:
        # a crash of the homing spine, or a flap of one of its trunks,
        # must have forced a re-homing for the run to count as recovered
        needs_reroute = args.scenario == "spine-crash" or (
            args.scenario == "link-flap" and spine == initial_active
        )
        ok = result.completed and (not needs_reroute or result.reroutes)
        if not ok:
            print("fabric: recovery check FAILED", file=sys.stderr)
            return 1
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """In-band telemetry over a fabric run: series, detectors, placement."""
    from repro.net.fabric import (
        CongestTrunk,
        FabricConfig,
        FabricFaultInjector,
        FabricFaultPlan,
        FabricJob,
    )
    from repro.obs import Observability, telemetry_json, write_telemetry_json

    obs = Observability(tracing_enabled=False, telemetry=True)
    job = FabricJob(
        FabricConfig(
            num_leaves=args.leaves,
            num_spines=args.spines,
            workers_per_leaf=args.workers_per_leaf,
            obs=obs,
            seed=args.seed,
        )
    )
    active = job.active_spine
    congested_trunk = None
    if args.congest:
        congested_trunk = f"leaf{args.leaf}->spine{active}"
        plan = FabricFaultPlan().add(
            CongestTrunk(
                leaf=args.leaf,
                spine=active,
                at_s=args.at_ms * 1e-3,
                down_for_s=args.down_ms * 1e-3,
                fraction=args.fraction,
            )
        )
        FabricFaultInjector(job, plan).arm()

    n_elem = args.elements or int(args.mbytes * 1e6 / 4)
    result = job.all_reduce(num_elements=n_elem, deadline_s=args.deadline_s)

    hub = obs.telemetry
    controller = job.controller
    loads = controller.spine_loads()
    placed = controller.place_load_aware(job.job_id)
    congested = {r.link for r in hub.congestion_reports()}

    if args.out:
        path = write_telemetry_json(hub, args.out)
        print(f"telemetry json: {path}", file=sys.stderr)
    if args.json:
        _emit_json({
            "completed": result.completed,
            "elapsed_s": result.elapsed_s,
            "congested_trunk_injected": congested_trunk,
            "telemetry": telemetry_json(hub),
            "spine_loads": {f"spine{s}": l for s, l in loads.items()},
            "place_load_aware": placed,
        })
    else:
        print(f"telemetry run: {args.leaves}x{args.spines} Clos, "
              f"{job.config.num_workers} workers, {n_elem} elements, "
              f"completed={result.completed}")
        if congested_trunk is not None:
            print(f"injected congestion: {congested_trunk} at "
                  f"{args.fraction:g}x line rate for {args.down_ms:g} ms")
        print()
        print(hub.summary())
        print()
        print("spine loads: " + ", ".join(
            f"spine{s}={l:.3f}" for s, l in sorted(loads.items())))
        print(f"load-aware placement for job {job.job_id}: spine{placed}")

    if args.check:
        ok = result.completed and hub.collector.frames_drained > 0
        if not ok:
            print("telemetry: no frames drained", file=sys.stderr)
        if args.congest:
            if congested_trunk not in congested:
                print(f"telemetry: congestion detector missed "
                      f"{congested_trunk} (flagged: {sorted(congested)})",
                      file=sys.stderr)
                ok = False
            if placed == active:
                print(f"telemetry: load-aware placement stayed on the "
                      f"congested spine{active}", file=sys.stderr)
                ok = False
        if not ok:
            print("telemetry: check FAILED", file=sys.stderr)
            return 1
        print("telemetry check passed")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the performance suite, emit BENCH.json, optionally gate."""
    from repro.perf import (
        WORKLOADS,
        attach_baseline,
        check_regression,
        format_trend,
        load_bench,
        load_trend,
        profile_workload,
        run_suite,
        trend_table,
        write_bench,
    )

    if args.trend:
        docs = load_trend(args.trend_dir)
        if not docs:
            print(f"bench: no BENCH_*.json baselines in {args.trend_dir}",
                  file=sys.stderr)
            return 2
        trend = trend_table(docs)
        if args.json:
            print(json.dumps(trend, indent=2))
        else:
            print(format_trend(trend), end="")
        if args.out:
            write_bench(trend, args.out)
        return 0

    names = None if args.workloads == "all" else args.workloads.split(",")
    doc = run_suite(
        names=names, scale=args.scale, repeats=args.repeats, label=args.label
    )

    baseline = None
    if args.baseline:
        baseline = load_bench(args.baseline)
        attach_baseline(doc, baseline)

    if args.out:
        write_bench(doc, args.out)

    if args.profile:
        report = "".join(
            profile_workload(name, scale=args.scale, top=args.profile_top)
            for name in (names if names is not None else list(WORKLOADS))
        )
        if args.out:
            prof_path = Path(args.out).with_suffix(".profile.txt")
            prof_path.write_text(report)
            print(f"profile written to {prof_path}")
        else:
            print(report)

    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(f"{'workload':<14} {'wall s':>8} {'events':>9} "
              f"{'events/s':>10} {'packets/s':>10}")
        for name, m in doc["workloads"].items():
            print(f"{name:<14} {m['wall_s']:>8.3f} {m['events']:>9d} "
                  f"{m['events_per_s']:>10,.0f} {m['packets_per_s']:>10,.0f}")
        for name, delta in doc.get("deltas", {}).items():
            ratio = delta["events_per_s_ratio"]
            if ratio is not None:
                print(f"  vs baseline {name}: {ratio:.2f}x events/s")

    if args.check:
        if baseline is None:
            print("bench: --check requires --baseline", file=sys.stderr)
            return 2
        failures = check_regression(
            doc, baseline, max_regression=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"bench gate passed (allowed regression "
              f"{args.max_regression:.0%})")
    return 0


def _parse_knob(text: str) -> tuple[str, object]:
    """``key=value`` with JSON-typed values (bare words stay strings)."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Shard one scenario across seeds/grid points/processes."""
    from repro.perf import write_bench
    from repro.sweep import SCENARIOS, make_tasks, run_sweep, sweep_summary

    if args.scenario not in SCENARIOS:
        print(f"sweep: unknown scenario {args.scenario!r} "
              f"(have {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
        return 2
    params = dict(p for p in (args.param or []))
    grid: dict[str, list] = {}
    for key, raw in (args.grid or []):
        values = raw if isinstance(raw, list) else [
            _parse_knob(f"_={v}")[1] for v in str(raw).split(",")
        ]
        grid[key] = values
    tasks = make_tasks(
        args.scenario, args.seed, args.seeds, params=params, grid=grid
    )

    def _progress(rec: dict) -> None:
        mark = "ok" if rec.get("ok") else "FAIL"
        print(f"  [{mark}] {rec['task_id']} ({rec.get('wall_s', 0.0):.2f}s)")

    result = run_sweep(
        tasks, artifact=args.out, procs=args.procs, resume=args.resume,
        on_record=None if args.json else _progress,
    )
    summary = sweep_summary(result, label=args.label)
    if args.summary_out:
        write_bench(summary, args.summary_out)
    if args.json:
        _emit_json(summary)
    else:
        print(f"sweep {args.scenario}: {summary['tasks_total']} tasks "
              f"({summary['tasks_run']} ran, {summary['tasks_skipped']} "
              f"resumed, {summary['tasks_failed']} failed)")
        for tid in summary["failed_task_ids"]:
            rec = result.records[tid]
            print(f"  FAIL {tid}: {rec.get('error', '?')}", file=sys.stderr)
    if args.check and not result.ok:
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Random fault plans against the tier-1 invariants."""
    from repro.sweep import replay_draw, run_fuzz

    if args.replay:
        payload = json.loads(Path(args.replay).read_text())
        # accept a bare draw, a fuzz record, or a minimized entry
        draw = payload.get("draw", payload) if isinstance(payload, dict) else payload
        if "result" in draw:
            draw = draw["result"]["draw"]
        out = replay_draw(draw)
        _emit_json({"draw": draw, **out})
        return 1 if out["violations"] else 0

    domains = tuple(args.domains.split(","))
    report = run_fuzz(
        budget=args.budget,
        root_seed=args.seed,
        procs=args.procs,
        artifact=args.out,
        domains=domains,
        minimize=not args.no_minimize,
        resume=args.resume,
    )
    if args.json:
        _emit_json({
            "budget": report.budget,
            "root_seed": report.root_seed,
            "draws": report.draws,
            "ok": report.ok,
            "errors": report.errors,
            "failures": [
                {"task_id": f.task_id, "draw": f.draw,
                 "violations": f.violations, "observables": f.observables}
                for f in report.failures
            ],
            "minimized": report.minimized,
        })
    else:
        print(f"fuzz: {report.draws}/{report.budget} draws, "
              f"{len(report.failures)} failing, "
              f"{len(report.errors)} harness errors "
              f"(root seed {report.root_seed}, domains {','.join(domains)})")
        for err in report.errors:
            print(f"  ERROR {err}", file=sys.stderr)
        for entry in report.minimized:
            print(f"  FAIL {entry['task_id']}: {entry['violations']}",
                  file=sys.stderr)
            print(f"    replay: {json.dumps(entry['draw'], sort_keys=True)}",
                  file=sys.stderr)
        if report.ok:
            print("fuzz: all invariants held")
    return 0 if report.ok else 1


def _obs_allreduce(args: argparse.Namespace):
    """One fully instrumented all-reduce; returns ``(job, obs)``."""
    from repro.net.loss import BernoulliLoss, NoLoss
    from repro.obs import Observability

    obs = Observability()
    loss = args.loss
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=args.workers,
            pool_size=pool_size_for_rate(args.rate),
            timeout_s=1e-4 if loss else 1e-3,
            link=LinkSpec(rate_gbps=args.rate),
            loss_factory=(lambda: BernoulliLoss(loss)) if loss else NoLoss,
            obs=obs,
            seed=args.seed,
        )
    )
    job.all_reduce(num_elements=int(args.mbytes * 1e6 / 4), verify=False)
    return job, obs


def _cmd_obs_trace(args: argparse.Namespace) -> None:
    """Export a run as Chrome trace JSON + JSONL events + metrics."""
    from pathlib import Path

    from repro.obs import validate_chrome_trace, write_chrome_trace, write_jsonl

    job, obs = _obs_allreduce(args)
    out = Path(args.out)
    trace_path = write_chrome_trace(obs.tracer, out / "trace.json")
    events_path = write_jsonl(obs.tracer, out / "events.jsonl")
    metrics_path = out / "metrics.json"
    metrics_path.write_text(
        json.dumps(obs.metrics.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    n = validate_chrome_trace(trace_path)
    print(f"{len(obs.tracer)} events over {job.sim.now * 1e3:.3f} ms simulated")
    print(f"chrome trace: {trace_path} ({n} trace events; open in Perfetto)")
    print(f"jsonl events: {events_path}")
    print(f"metrics:      {metrics_path}")


def _cmd_obs_metrics(args: argparse.Namespace) -> None:
    """Dump the metrics registry after one instrumented run."""
    _job, obs = _obs_allreduce(args)
    if args.json:
        _emit_json(obs.metrics.as_dict())
    else:
        print(obs.metrics.render())


def _cmd_obs_dashboard(args: argparse.Namespace) -> None:
    """The unified report, over a bare or fault-injected managed run."""
    from repro.obs import Dashboard

    if args.scenario == "none":
        job, _obs = _obs_allreduce(args)
        print(Dashboard.from_job(job).summary())
        return

    from repro.controlplane import (
        ControlPlaneConfig,
        Controller,
        CrashWorker,
        FaultInjector,
        FaultPlan,
        FlapLink,
        RebootSwitch,
    )
    from repro.obs import Observability

    obs = Observability()
    ctl = Controller(
        ControlPlaneConfig(num_workers=args.workers, obs=obs, seed=args.seed)
    )
    at = args.at_ms * 1e-3
    if args.scenario == "worker-crash":
        plan = FaultPlan([CrashWorker(member=args.member, at_s=at)])
    elif args.scenario == "switch-reboot":
        plan = FaultPlan([RebootSwitch(at_s=at, down_for_s=args.down_ms * 1e-3)])
    else:  # link-flap
        plan = FaultPlan([FlapLink(member=args.member, at_s=at,
                                   down_for_s=args.down_ms * 1e-3)])
    FaultInjector(ctl, plan).arm()
    n_elem = int(args.mbytes * 1e6 / 4)
    rng = np.random.default_rng(args.seed)
    tensors = [rng.integers(-100, 100, n_elem).astype(np.int64)
               for _ in range(args.workers)]
    ctl.run_collective(tensors, deadline_s=5.0)
    print(Dashboard.from_controller(ctl).summary())


def _add_obs_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--rate", type=float, default=10.0, help="link Gbps")
    p.add_argument("--mbytes", type=float, default=0.1, help="tensor MB")
    p.add_argument("--loss", type=float, default=0.0, help="loss probability")
    p.add_argument("--seed", type=int, default=0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SwitchML reproduction toolbox"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--json", action="store_true",
                     help="emit the raw rows as JSON instead of a table")

    fig = sub.add_parser("figure", help="draw a figure's shape in the terminal")
    fig.add_argument("name", choices=sorted(_FIGURES))

    ar = sub.add_parser("allreduce", help="run one all-reduce on the simulator")
    ar.add_argument("--workers", type=int, default=8)
    ar.add_argument("--rate", type=float, default=10.0, help="link Gbps")
    ar.add_argument("--mbytes", type=float, default=4.0, help="tensor MB")
    ar.add_argument("--seed", type=int, default=0)
    ar.add_argument("--json", action="store_true",
                    help="emit the run's measurements as JSON")

    res = sub.add_parser("resources", help="switch resource report")
    res.add_argument("--pool", type=int, default=None)

    sub.add_parser("claims", help="run the executable audit of the paper's claims")

    ben = sub.add_parser(
        "bench",
        help="run the performance suite and emit/compare BENCH.json "
             "(see docs/PERFORMANCE.md)",
    )
    ben.add_argument("--workloads", default="all",
                     help="comma-separated workload names, or 'all'")
    ben.add_argument("--scale", type=float, default=1.0,
                     help="workload size multiplier (CI smoke uses 0.1)")
    ben.add_argument("--repeats", type=int, default=3,
                     help="runs per workload; best wall is kept")
    ben.add_argument("--label", default="", help="free-form run label")
    ben.add_argument("--out", default=None, help="write BENCH.json here")
    ben.add_argument("--baseline", default=None,
                     help="BENCH.json to compare against (e.g. BENCH_0004.json)")
    ben.add_argument("--check", action="store_true",
                     help="exit 1 if events/sec regresses past --max-regression")
    ben.add_argument("--max-regression", type=float, default=0.20,
                     help="allowed fractional events/sec drop vs baseline")
    ben.add_argument("--json", action="store_true",
                     help="print the full BENCH document")
    ben.add_argument("--profile", action="store_true",
                     help="after timing, run each workload once under "
                          "cProfile and write the top functions next to "
                          "--out (<out>.profile.txt) or to stdout")
    ben.add_argument("--profile-top", type=int, default=25,
                     help="functions per sort order in the profile dump")
    ben.add_argument("--trend", action="store_true",
                     help="instead of running: read the committed "
                          "BENCH_*.json baselines and print the "
                          "per-workload events/sec and wall trajectory")
    ben.add_argument("--trend-dir", default=".",
                     help="directory holding the BENCH_*.json baselines")

    vio = sub.add_parser(
        "violin", help="SS5.1 methodology: TAT distribution over N tensors"
    )
    vio.add_argument("--workers", type=int, default=8)
    vio.add_argument("--rate", type=float, default=10.0)
    vio.add_argument("--mbytes", type=float, default=0.5)
    vio.add_argument("--loss", type=float, default=0.0)
    vio.add_argument("--repetitions", type=int, default=50)

    flt = sub.add_parser(
        "faults",
        help="inject a failure into a controller-managed all-reduce and "
             "report detection, recovery phases, and availability",
        aliases=["recover"],
    )
    flt.add_argument(
        "--scenario",
        choices=("worker-crash", "switch-reboot", "link-flap"),
        default="worker-crash",
    )
    flt.add_argument("--workers", type=int, default=4)
    flt.add_argument("--pool", type=int, default=16)
    flt.add_argument("--member", type=int, default=2,
                     help="which worker to crash / whose link to flap")
    flt.add_argument("--at-ms", type=float, default=0.3,
                     help="fault injection time")
    flt.add_argument("--down-ms", type=float, default=10.0,
                     help="outage duration (reboot / flap)")
    flt.add_argument("--mbytes", type=float, default=0.5, help="tensor MB")
    flt.add_argument("--seed", type=int, default=0)

    fab = sub.add_parser(
        "fabric",
        help="run an all-reduce on a 2-tier Clos fabric under the fabric "
             "controller, optionally through a cross-rack fault",
    )
    fab.add_argument("--leaves", type=int, default=4)
    fab.add_argument("--spines", type=int, default=2)
    fab.add_argument("--workers-per-leaf", type=int, default=4)
    fab.add_argument("--pool", type=int, default=16)
    fab.add_argument("--mbytes", type=float, default=0.04, help="tensor MB")
    fab.add_argument("--elements", type=int, default=None,
                     help="tensor elements per worker (overrides --mbytes)")
    fab.add_argument("--loss", type=float, default=0.0,
                     help="per-link loss probability")
    fab.add_argument(
        "--scenario",
        choices=("none", "spine-crash", "link-flap", "straggler"),
        default="none",
    )
    fab.add_argument("--leaf", type=int, default=0,
                     help="target leaf (link-flap / straggler)")
    fab.add_argument("--spine", type=int, default=None,
                     help="target spine (defaults to the active one)")
    fab.add_argument("--at-ms", type=float, default=0.2,
                     help="fault injection time")
    fab.add_argument("--down-ms", type=float, default=3.0,
                     help="outage duration (flap / straggler)")
    fab.add_argument("--deadline-s", type=float, default=5.0,
                     help="simulated-time deadline for the collective")
    fab.add_argument("--seed", type=int, default=0)
    fab.add_argument("--dashboard", action="store_true",
                     help="print the full obs dashboard after the run")
    fab.add_argument("--check-recovery", action="store_true",
                     help="exit 1 unless the run completed (and rerouted, "
                          "where the scenario demands one)")
    fab.add_argument("--json", action="store_true")

    tel = sub.add_parser(
        "telemetry",
        help="in-band network telemetry over a fabric run: per-link time "
             "series, congestion/straggler/hot-spine detectors, and the "
             "load-aware placement they feed",
    )
    tel.add_argument("--leaves", type=int, default=2)
    tel.add_argument("--spines", type=int, default=2)
    tel.add_argument("--workers-per-leaf", type=int, default=4)
    tel.add_argument("--mbytes", type=float, default=0.26, help="tensor MB")
    tel.add_argument("--elements", type=int, default=None,
                     help="tensor elements per worker (overrides --mbytes)")
    tel.add_argument("--congest", action="store_true",
                     help="inject background traffic on the active spine's "
                          "uplink (CongestTrunk fault)")
    tel.add_argument("--leaf", type=int, default=0,
                     help="leaf whose uplink gets congested")
    tel.add_argument("--fraction", type=float, default=1.05,
                     help="background traffic as a fraction of line rate")
    tel.add_argument("--at-ms", type=float, default=0.2,
                     help="congestion start time")
    tel.add_argument("--down-ms", type=float, default=1.5,
                     help="congestion duration")
    tel.add_argument("--deadline-s", type=float, default=5.0)
    tel.add_argument("--seed", type=int, default=0)
    tel.add_argument("--out", default=None,
                     help="write the telemetry snapshot as JSON to this path")
    tel.add_argument("--check", action="store_true",
                     help="exit 1 unless series are non-empty (and, with "
                          "--congest, the detector flags the loaded trunk "
                          "and placement avoids it)")
    tel.add_argument("--json", action="store_true")

    swp = sub.add_parser(
        "sweep",
        help="shard many independent simulations across processes, "
             "streaming a resumable JSONL artifact (see docs/TESTING.md)",
    )
    swp.add_argument("--scenario", default="fig4_lossy",
                     help="scenario name from the sweep registry")
    swp.add_argument("--seeds", type=int, default=8,
                     help="number of seed indices per grid point")
    swp.add_argument("--seed", type=int, default=0,
                     help="root seed; per-task seeds derive from it")
    swp.add_argument("--procs", type=int, default=1,
                     help="worker processes (1 = inline)")
    swp.add_argument("--out", default=None,
                     help="JSONL artifact path (one record per task)")
    swp.add_argument("--resume", action="store_true",
                     help="skip tasks already completed in --out")
    swp.add_argument("--param", type=_parse_knob, action="append",
                     metavar="KEY=VALUE",
                     help="scenario knob shared by every task (repeatable)")
    swp.add_argument("--grid", type=_parse_knob, action="append",
                     metavar="KEY=V1,V2,...",
                     help="sweep axis: the cartesian product over all "
                          "--grid axes expands into tasks (repeatable)")
    swp.add_argument("--label", default="", help="free-form summary label")
    swp.add_argument("--summary-out", default=None,
                     help="write the BENCH-style sweep summary JSON here")
    swp.add_argument("--check", action="store_true",
                     help="exit 1 if any task failed")
    swp.add_argument("--json", action="store_true",
                     help="print the full summary document")

    fz = sub.add_parser(
        "fuzz",
        help="random fault plans + protocol knobs, tier-1 invariants "
             "asserted on every draw; failures minimized and replayable",
    )
    fz.add_argument("--budget", type=int, default=50,
                    help="number of fuzz draws")
    fz.add_argument("--seed", type=int, default=0,
                    help="root seed; draw i replays as fuzz#d<i>")
    fz.add_argument("--procs", type=int, default=1,
                    help="worker processes (1 = inline)")
    fz.add_argument("--out", default=None,
                    help="JSONL artifact path (doubles as replay corpus)")
    fz.add_argument("--resume", action="store_true",
                    help="skip draws already completed in --out")
    fz.add_argument("--domains", default="flat,rack,fabric",
                    help="comma-separated fuzz domains")
    fz.add_argument("--no-minimize", action="store_true",
                    help="report failures without shrinking them")
    fz.add_argument("--replay", default=None, metavar="DRAW_JSON",
                    help="re-run one serialized draw (a JSON file holding "
                         "a draw, a fuzz record, or a minimized entry) "
                         "instead of fuzzing")
    fz.add_argument("--json", action="store_true",
                    help="emit the full report as JSON")

    obs_p = sub.add_parser(
        "obs",
        help="observability: trace export, metrics dump, unified dashboard",
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    otr = obs_sub.add_parser(
        "trace",
        help="run an instrumented all-reduce and export Chrome trace "
             "(Perfetto), JSONL events, and a metrics snapshot",
    )
    _add_obs_run_args(otr)
    otr.add_argument("--out", default="obs-out", help="output directory")
    omt = obs_sub.add_parser("metrics", help="dump the metrics registry")
    _add_obs_run_args(omt)
    omt.add_argument("--json", action="store_true")
    odb = obs_sub.add_parser(
        "dashboard",
        help="print the unified dashboard for a run, optionally through "
             "a fault scenario (managed by the control plane)",
    )
    _add_obs_run_args(odb)
    odb.add_argument(
        "--scenario",
        choices=("none", "worker-crash", "switch-reboot", "link-flap"),
        default="none",
    )
    odb.add_argument("--member", type=int, default=2)
    odb.add_argument("--at-ms", type=float, default=0.3)
    odb.add_argument("--down-ms", type=float, default=10.0)

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
    elif args.command == "experiment":
        if args.json:
            _emit_json(_EXPERIMENT_DATA[args.name]())
        else:
            _EXPERIMENTS[args.name]()
    elif args.command == "figure":
        _FIGURES[args.name]()
    elif args.command == "allreduce":
        _cmd_allreduce(args)
    elif args.command == "resources":
        _print_resources(args.pool)
    elif args.command == "violin":
        _cmd_violin(args)
    elif args.command in ("faults", "recover"):
        _cmd_faults(args)
    elif args.command == "fabric":
        return _cmd_fabric(args)
    elif args.command == "telemetry":
        return _cmd_telemetry(args)
    elif args.command == "bench":
        return _cmd_bench(args)
    elif args.command == "sweep":
        return _cmd_sweep(args)
    elif args.command == "fuzz":
        return _cmd_fuzz(args)
    elif args.command == "obs":
        if args.obs_command == "trace":
            _cmd_obs_trace(args)
        elif args.obs_command == "metrics":
            _cmd_obs_metrics(args)
        else:
            _cmd_obs_dashboard(args)
    elif args.command == "claims":
        from repro.harness.claims import audit

        results = audit()
        failed = 0
        for claim, passed in results:
            mark = "PASS" if passed else "FAIL"
            if not passed:
                failed += 1
            print(f"[{mark}] {claim.section:12s} {claim.text}")
        print(f"\n{len(results) - failed}/{len(results)} claims verified")
        return 1 if failed else 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess test
    sys.exit(main())
