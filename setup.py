"""Setuptools entry point (legacy editable installs without the wheel pkg)."""
from setuptools import setup

setup()
