"""SS5.5 "Switch resources": SRAM and stage accounting.

Paper claims: the BDP-tuned pools occupy 32 KB (s=128, 10 Gbps) and
128 KB (s=512, 100 Gbps) of register space -- "much less than 10 %" of
switch capacity, with "two orders of magnitude" of slot headroom -- and
worker count does not affect the line-rate aggregation resources.
"""

from conftest import once

from repro.dataplane.pipeline import TOFINO
from repro.dataplane.resources import switchml_resource_report
from repro.harness.experiments import switch_resources
from repro.harness.report import format_table


def run_resources():
    rows = switch_resources()
    headroom = switchml_resource_report(128 * 100, num_workers=16)
    return rows, headroom


def test_switch_resources(benchmark, show):
    rows, headroom = once(benchmark, run_resources)

    show(
        "\n"
        + format_table(
            ["pool", "rate", "value SRAM", "total SRAM", "of pipeline",
             "stages", "fits"],
            [
                [
                    r["pool_size"],
                    f"{r['recommended_rate_gbps']:g}G",
                    f"{r['value_sram_kb']:.0f} KB",
                    f"{r['total_sram_kb']:.1f} KB",
                    f"{r['sram_fraction']:.3%}",
                    f"{r['stages']}/{TOFINO.num_stages}",
                    r["fits"],
                ]
                for r in rows
            ],
            title="SS5.5: SwitchML switch resource usage",
        )
        + f"\n100x slot headroom check: s={headroom.pool_size} -> "
        f"{headroom.total_sram_bytes / 1024:.0f} KB "
        f"({headroom.sram_fraction:.1%} of pipeline SRAM)"
    )

    by = {r["pool_size"]: r for r in rows}
    assert by[128]["value_sram_kb"] == 32  # paper: 32 KB at 10 Gbps
    assert by[512]["value_sram_kb"] == 128  # paper: 128 KB at 100 Gbps
    for r in rows:
        assert r["sram_fraction"] < 0.01  # << 10 %
        assert r["fits"]
    # two orders of magnitude more slots still fit (SS3.6)
    assert headroom.total_sram_bytes <= TOFINO.sram_bytes
