"""SS6 extension/ablation: fixed vs adaptive retransmission timeout.

The paper uses a fixed 1 ms timeout (SS5.5) and notes one "should take
care to adapt the retransmission timeout according to variations in
end-to-end RTT" (SS6).  This ablation measures both sides: under loss, a
1 ms timeout on an ~11 us RTT turns each loss into a ~1 ms pipeline
stall, while the Jacobson/Karn adaptive RTO (with RFC 6298 backoff)
recovers in tens of microseconds.
"""

from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.report import format_table
from repro.net.loss import BernoulliLoss

LOSS_RATES = (0.001, 0.01)


def run_ablation():
    n_elem = 32 * 128 * 24
    rows = []
    for loss in LOSS_RATES:
        row = {"loss": loss}
        for mode in ("fixed", "adaptive"):
            job = SwitchMLJob(
                SwitchMLConfig(
                    num_workers=4, pool_size=128,
                    timeout_mode=mode, timeout_s=1e-3,
                    loss_factory=lambda: BernoulliLoss(loss),
                    seed=11,
                )
            )
            out = job.all_reduce(num_elements=n_elem, verify=False)
            assert out.completed
            row[f"{mode}_tat_s"] = out.max_tat
            row[f"{mode}_retrans"] = out.retransmissions
        rows.append(row)
    return rows


def test_adaptive_timeout_ablation(benchmark, show):
    rows = once(benchmark, run_ablation)

    show(
        "\n"
        + format_table(
            ["loss", "fixed 1ms TAT", "adaptive TAT", "speedup",
             "fixed retrans", "adaptive retrans"],
            [
                [
                    f"{r['loss']:.2%}",
                    f"{r['fixed_tat_s'] * 1e3:.2f} ms",
                    f"{r['adaptive_tat_s'] * 1e3:.2f} ms",
                    f"{r['fixed_tat_s'] / r['adaptive_tat_s']:.2f}x",
                    r["fixed_retrans"],
                    r["adaptive_retrans"],
                ]
                for r in rows
            ],
            title="Ablation: fixed (paper) vs adaptive (SS6) retransmission timeout",
        )
    )

    for r in rows:
        # adaptive is never worse; decisively better at 1% loss
        assert r["adaptive_tat_s"] <= r["fixed_tat_s"] * 1.02
    high = rows[-1]
    assert high["fixed_tat_s"] / high["adaptive_tat_s"] > 1.5
