"""Appendix D extension: encrypted in-network aggregation.

The paper observes that Paillier-style additive homomorphism matches the
switch's aggregation operation exactly -- E(x) * E(y) = E(x + y) -- and
leaves the cost question open.  This bench runs the encrypted pipeline
end to end (quantize, encrypt, ciphertext aggregation, decrypt,
dequantize), verifies exactness, and quantifies the costs that make
dataplane crypto "likely costly": wire expansion and per-element modular
multiplication time vs the plaintext 32-bit add.
"""

import time

import numpy as np
from conftest import once

from repro.crypto import encrypted_allreduce, generate_keypair
from repro.harness.report import format_table
from repro.quant.theory import aggregation_error_bound


def run_encrypted():
    keys = generate_keypair(bits=256, seed=5)
    rng = np.random.default_rng(1)
    n, size, f = 4, 256, 1e6
    updates = [rng.normal(size=size) for _ in range(n)]

    start = time.perf_counter()
    out = encrypted_allreduce(updates, keys, scaling_factor=f, seed=2)
    encrypted_wall = time.perf_counter() - start

    exact = np.sum(updates, axis=0)
    max_err = float(np.abs(out.aggregate - exact).max())
    bound = aggregation_error_bound(n, f)

    start = time.perf_counter()
    for _ in range(50):
        sum(np.rint(u * f).astype(np.int64) for u in updates)
    plaintext_wall = (time.perf_counter() - start) / 50

    return {
        "n": n,
        "size": size,
        "max_err": max_err,
        "bound": bound,
        "wire_expansion": out.wire_expansion,
        "modmuls": out.modular_multiplications,
        "encrypted_wall_s": encrypted_wall,
        "plaintext_wall_s": plaintext_wall,
        "cipher_bytes": out.ciphertext_bytes_per_element,
    }


def test_encrypted_aggregation(benchmark, show):
    r = once(benchmark, run_encrypted)

    slowdown = r["encrypted_wall_s"] / max(r["plaintext_wall_s"], 1e-12)
    show(
        "\n"
        + format_table(
            ["metric", "value"],
            [
                ["workers x elements", f"{r['n']} x {r['size']}"],
                ["max |error| vs exact float sum", f"{r['max_err']:.3g}"],
                ["Theorem 1 bound (n/f)", f"{r['bound']:.3g}"],
                ["ciphertext bytes per 4-byte element", r["cipher_bytes"]],
                ["wire expansion", f"{r['wire_expansion']:.0f}x"],
                ["switch modular multiplications", r["modmuls"]],
                ["encrypted pipeline wall time", f"{r['encrypted_wall_s'] * 1e3:.1f} ms"],
                ["plaintext aggregation wall time", f"{r['plaintext_wall_s'] * 1e3:.3f} ms"],
                ["slowdown", f"{slowdown:.0f}x"],
            ],
            title="Appendix D: homomorphic (Paillier) in-network aggregation",
        )
    )

    # correctness: within the fixed-point error bound, despite crypto
    assert r["max_err"] <= r["bound"]
    # the costs the paper alludes to are real and large
    assert r["wire_expansion"] >= 16  # 256-bit n -> 64-byte ciphertexts
    assert slowdown > 10
