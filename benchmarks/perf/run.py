#!/usr/bin/env python
"""Standalone entry point for the performance harness.

Equivalent to ``python -m repro.cli bench``; kept here so the
benchmark suite is discoverable next to the pytest-benchmark files.

    PYTHONPATH=src python benchmarks/perf/run.py --out BENCH.json \
        --baseline BENCH_0004.json --check
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
