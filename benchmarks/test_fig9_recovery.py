"""Figure 9 / Appendix A: the loss-recovery design, end to end, plus the
ablation that motivates it.

Two parts:
1. the Appendix A scenario on the live simulator -- scripted drops of an
   upstream update and a downstream result, recovered by timeout
   retransmission, shadow copies, and unicast replies;
2. the ablation: the same lossy run against Algorithm 1 (no seen bitmap,
   no shadow copy) either corrupts the aggregate or deadlocks -- the
   failure mode SS3.5 describes for naive retransmission.
"""

import numpy as np
from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.net.loss import BernoulliLoss, ScriptedLoss


def run_recovery():
    # Part 1: scripted Appendix-A-style drops on a 3-worker rack.
    # Worker 2's first update vanishes upstream; worker 0's first result
    # vanishes downstream.
    up_loss = {2: ScriptedLoss({0})}
    down_loss = {0: ScriptedLoss({0})}
    counters = {"up": -1, "down": -1}

    def up_factory():
        counters["up"] += 1
        return up_loss.get(counters["up"], ScriptedLoss(set()))

    # build_rack creates uplink then downlink per host, so interleave:
    losses = []
    for host in range(3):
        losses.append(up_loss.get(host, ScriptedLoss(set())))
        losses.append(down_loss.get(host, ScriptedLoss(set())))
    it = iter(losses)

    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=3, pool_size=2, timeout_s=1e-4,
            loss_factory=lambda: next(it),
            check_invariants=True,
        )
    )
    tensors = [np.full(32 * 2 * 4, w + 1, dtype=np.int64) for w in range(3)]
    scripted = job.all_reduce(tensors)  # verify=True

    # Part 2: ablation -- Algorithm 1 under random loss.
    ablation = SwitchMLJob(
        SwitchMLConfig(
            num_workers=4, pool_size=8, lossless_switch=True,
            timeout_s=1e-4, loss_factory=lambda: BernoulliLoss(0.02), seed=3,
        )
    )
    abl_tensors = [
        np.random.default_rng(w).integers(-100, 100, 32 * 8 * 10).astype(np.int64)
        for w in range(4)
    ]
    abl_out = ablation.all_reduce(abl_tensors, deadline_s=0.5, verify=False)
    expected = np.sum(abl_tensors, axis=0)
    abl_corrupted = abl_out.completed and any(
        res is None or not np.array_equal(res, expected) for res in abl_out.results
    )
    return scripted, abl_out, abl_corrupted


def test_fig9_loss_recovery_and_ablation(benchmark, show):
    scripted, abl_out, abl_corrupted = once(benchmark, run_recovery)

    show(
        "\nFigure 9 / Appendix A: scripted loss recovery"
        f"\n  completed: {scripted.completed}; aggregate bit-exact"
        f"\n  retransmissions: {scripted.retransmissions}; "
        f"switch dup-drops: {scripted.switch_ignored_duplicates}; "
        f"unicast replies: {scripted.switch_unicast_retransmits}"
        "\nAblation (Algorithm 1, no shadow copies, 2% loss): "
        + (
            "aggregate CORRUPTED by retransmission double-counting"
            if abl_corrupted
            else ("DEADLOCKED (never completed)" if not abl_out.completed
                  else "unexpectedly fine")
        )
    )

    # Algorithm 3 recovered exactly, exercising both loss paths.
    assert scripted.completed
    assert scripted.retransmissions >= 1
    assert (
        scripted.switch_ignored_duplicates + scripted.switch_unicast_retransmits >= 1
    )
    # Algorithm 1 failed one way or the other.
    assert abl_corrupted or not abl_out.completed
