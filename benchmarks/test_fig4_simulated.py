"""Figure 4, measured entirely on the packet simulator.

The main Figure 4 bench sweeps the analytic models; this companion runs
SwitchML, the dedicated PS, the colocated PS, and ring all-reduce as
*actual packet-level systems* on identical simulated racks, so the
paper's comparison emerges from protocol behaviour, not from the cost
formulas.  Expected ordering (paper Fig. 4 top): SwitchML first, the
dedicated PS close behind (with 2x the machines), ring next, colocated
PS at roughly half of SwitchML.
"""

from conftest import once

from repro.collectives.models import line_rate_ate
from repro.collectives.ps_simulation import PSJob, PSJobConfig
from repro.collectives.ring_simulation import RingJob, RingJobConfig
from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.report import format_table

N_ELEMENTS = 32 * 8192
WORKERS = 8


def run_all():
    results = {}
    sw = SwitchMLJob(SwitchMLConfig(num_workers=WORKERS, pool_size=128))
    results["switchml"] = sw.all_reduce(
        num_elements=N_ELEMENTS, verify=False
    ).aggregated_elements_per_second(N_ELEMENTS)

    for label, colocated in (("dedicated_ps", False), ("colocated_ps", True)):
        job = PSJob(PSJobConfig(num_workers=WORKERS, colocated=colocated,
                                window=128))
        results[label] = job.all_reduce(
            num_elements=N_ELEMENTS, verify=False
        ).aggregated_elements_per_second(N_ELEMENTS)

    ring = RingJob(RingJobConfig(num_workers=WORKERS))
    results["ring"] = ring.all_reduce(
        num_elements=N_ELEMENTS, verify=False
    ).aggregated_elements_per_second(N_ELEMENTS)
    return results


def test_fig4_simulated(benchmark, show):
    results = once(benchmark, run_all)

    line_sw = line_rate_ate(10.0)
    line_ring = line_rate_ate(10.0, "ring", num_workers=WORKERS)
    show(
        "\n"
        + format_table(
            ["system (measured on the simulator)", "ATE/s", "vs its bound"],
            [
                ["SwitchML", f"{results['switchml'] / 1e6:.0f}M",
                 f"{results['switchml'] / line_sw:.1%}"],
                ["Dedicated PS (2x machines)",
                 f"{results['dedicated_ps'] / 1e6:.0f}M",
                 f"{results['dedicated_ps'] / line_sw:.1%}"],
                ["Ring all-reduce",
                 f"{results['ring'] / 1e6:.0f}M",
                 f"{results['ring'] / line_ring:.1%}"],
                ["Colocated PS",
                 f"{results['colocated_ps'] / 1e6:.0f}M",
                 f"{results['colocated_ps'] / line_sw:.1%}"],
            ],
            title="Figure 4 (packet-level): 8 workers, 10 Gbps, 1 MB tensor",
        )
    )

    # the paper's ordering, measured
    assert results["switchml"] > results["dedicated_ps"]
    assert results["dedicated_ps"] > results["ring"]
    assert results["ring"] > results["colocated_ps"]
    # SwitchML at the header-limited line rate
    assert results["switchml"] > 0.95 * line_sw
    # dedicated PS close to SwitchML; colocated at roughly half
    assert results["dedicated_ps"] > 0.75 * results["switchml"]
    ratio = results["colocated_ps"] / results["switchml"]
    assert 0.35 < ratio < 0.65
