"""SS5.1 extension: the worker-core bottleneck at 100 Gbps.

The paper: "We use 4 CPU cores per worker.  This introduces a penalty
gap at 100 Gbps; but due to a bug in our Flow Director setup we are
unable to use more cores.  This means that our results at 100 Gbps are a
lower bound."  The simulator has no such bug: this bench sweeps the core
count and shows ATE/s scaling with cores until the link itself binds --
quantifying exactly how much the paper's 100 Gbps numbers left on the
table.
"""

from conftest import once

from repro.collectives.models import line_rate_ate
from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.report import format_table
from repro.net.host import HostSpec
from repro.net.link import LinkSpec

CORE_COUNTS = (1, 2, 4, 8, 16)
N_ELEMENTS = 32 * 8192


def run_core_sweep():
    rows = []
    for cores in CORE_COUNTS:
        job = SwitchMLJob(
            SwitchMLConfig(
                num_workers=4,
                pool_size=512,
                link=LinkSpec(rate_gbps=100.0),
                host=HostSpec(num_cores=cores),
            )
        )
        out = job.all_reduce(num_elements=N_ELEMENTS, verify=False)
        assert out.completed
        rows.append(
            {
                "cores": cores,
                "ate": out.aggregated_elements_per_second(N_ELEMENTS),
            }
        )
    return rows


def test_core_scaling_at_100g(benchmark, show):
    rows = once(benchmark, run_core_sweep)

    line = line_rate_ate(100.0)
    show(
        "\n"
        + format_table(
            ["worker cores", "ATE/s", "of line rate"],
            [
                [r["cores"], f"{r['ate'] / 1e6:.0f}M", f"{r['ate'] / line:.1%}"]
                for r in rows
            ],
            title="SS5.1: ATE/s vs worker cores at 100 Gbps (paper used 4)",
        )
    )

    by = {r["cores"]: r["ate"] for r in rows}
    # host-bound regime scales with cores...
    assert by[2] > 1.6 * by[1]
    assert by[4] > 1.6 * by[2]
    # ...the paper's 4-core setting sits below line rate (the "penalty
    # gap"; "our results at 100 Gbps are a lower bound")...
    assert by[4] < 0.85 * line
    # ...and enough cores reach the header-limited line rate.
    assert by[16] > 0.9 * line
