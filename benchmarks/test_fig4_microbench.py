"""Figure 4: aggregated tensor elements per second vs worker count.

Paper shape (10 and 100 Gbps, 4/8/16 workers): SwitchML flat at the
header-limited line rate (~222 M ATE/s at 10 Gbps) and above every
other strategy; Dedicated PS matches SwitchML (with 2x the machines);
Colocated PS at half; Gloo/NCCL below, degrading slightly with workers
and barely improving at 100 Gbps (CPU-bound TCP).

This bench reports the analytic model sweep AND a packet-simulator spot
check at 8 workers to show the two agree.
"""

from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tuning import pool_size_for_rate
from repro.harness.experiments import fig4_microbench
from repro.harness.report import format_table
from repro.net.link import LinkSpec


def _sim_spot_check(rate_gbps: float) -> float:
    n_elem = 32 * 8192
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=8,
            pool_size=pool_size_for_rate(rate_gbps),
            link=LinkSpec(rate_gbps=rate_gbps),
        )
    )
    out = job.all_reduce(num_elements=n_elem, verify=False)
    return out.aggregated_elements_per_second(n_elem)


def run_fig4():
    rows = fig4_microbench()
    sim = {rate: _sim_spot_check(rate) for rate in (10.0, 100.0)}
    return rows, sim


def test_fig4_microbench(benchmark, show):
    rows, sim = once(benchmark, run_fig4)

    def fmt(v):
        return "-" if v is None else f"{v / 1e6:.0f}M"

    show(
        "\n"
        + format_table(
            ["rate", "n", "switchml", "gloo", "nccl", "ded.PS", "colo.PS",
             "line(sw)", "line(ring)"],
            [
                [
                    f"{r['rate_gbps']:g}G",
                    r["workers"],
                    fmt(r["switchml"]),
                    fmt(r["gloo"]),
                    fmt(r["nccl"]),
                    fmt(r["dedicated_ps"]),
                    fmt(r["colocated_ps"]),
                    fmt(r["line_rate_switchml"]),
                    fmt(r["line_rate_ring"]),
                ]
                for r in rows
            ],
            title="Figure 4: ATE/s by strategy (model sweep)",
        )
        + "\npacket-simulator spot check (8 workers): "
        + ", ".join(f"{rate:g}G -> {v / 1e6:.0f}M ATE/s" for rate, v in sim.items())
    )

    by = {(r["rate_gbps"], r["workers"]): r for r in rows}
    # paper headline number: ~222M ATE/s at 10 Gbps
    assert 210e6 < by[(10.0, 8)]["switchml"] < 230e6
    # SwitchML wins everywhere it is defined
    for r in rows:
        for s in ("gloo", "nccl", "colocated_ps"):
            if r[s] is not None:
                assert r["switchml"] > r[s]
    # dedicated PS parity, colocated at half
    r8 = by[(10.0, 8)]
    assert abs(r8["dedicated_ps"] - r8["switchml"]) / r8["switchml"] < 0.1
    assert abs(r8["colocated_ps"] - r8["switchml"] / 2) / r8["switchml"] < 0.1
    # simulator agrees with the model at both rates
    assert abs(sim[10.0] - r8["switchml"]) / r8["switchml"] < 0.1
    assert abs(sim[100.0] - by[(100.0, 8)]["switchml"]) / by[(100.0, 8)]["switchml"] < 0.15
