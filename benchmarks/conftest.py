"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure via
:mod:`repro.harness.experiments`, prints the paper-vs-measured rows (so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section on stdout), and asserts the paper's qualitative shape.
"""

import pytest


@pytest.fixture
def show():
    """Print past pytest's capture so tables always reach the console."""

    def _show(text: str) -> None:
        import sys

        capman = None
        try:
            from _pytest.capture import CaptureManager  # noqa: F401
        except Exception:  # pragma: no cover
            pass
        # Write to the real stdout; pytest's -s users see it inline, and
        # captured runs surface it in the test's captured output section.
        print(text, file=sys.stderr)

    return _show


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The packet-simulator experiments are seconds-scale and deterministic;
    repeating them only slows the suite without adding information.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
