"""SS6 extension: the "parameter aggregator" deployment model.

The paper proposes, without evaluation, deploying SwitchML's logic on a
server unit with a programmable network attachment behind a legacy ToR,
"attached for example ... using several 100 Gbps or 400 Gbps ports".
This bench measures the sizing rule that sentence implies: the device's
attachment must carry the n-fold result fan-out, so it needs ~n x the
worker rate; anything less divides throughput accordingly.
"""

from conftest import once

from repro.collectives.models import line_rate_ate
from repro.core.aggregator_device import (
    AggregatorDeviceConfig,
    AggregatorDeviceJob,
)
from repro.harness.report import format_table
from repro.net.link import LinkSpec

ATTACHMENTS = (10.0, 20.0, 40.0, 100.0)
WORKERS = 8
N_ELEMENTS = 32 * 4096


def run_sizing():
    rows = []
    for rate in ATTACHMENTS:
        job = AggregatorDeviceJob(
            AggregatorDeviceConfig(
                num_workers=WORKERS,
                aggregator_link=LinkSpec(rate_gbps=rate),
            )
        )
        out = job.all_reduce(num_elements=N_ELEMENTS, verify=False)
        assert out.completed
        rows.append(
            {
                "attachment": rate,
                "ate": out.aggregated_elements_per_second(N_ELEMENTS),
            }
        )
    return rows


def test_aggregator_device_sizing(benchmark, show):
    rows = once(benchmark, run_sizing)

    line = line_rate_ate(10.0)
    show(
        "\n"
        + format_table(
            ["aggregator attachment", "ATE/s", "of 10G line rate"],
            [
                [f"{r['attachment']:g} Gbps", f"{r['ate'] / 1e6:.0f}M",
                 f"{r['ate'] / line:.1%}"]
                for r in rows
            ],
            title=f"SS6 parameter aggregator: attachment sizing, "
                  f"{WORKERS} x 10 Gbps workers",
        )
    )

    by = {r["attachment"]: r["ate"] for r in rows}
    # a 1x attachment divides throughput by ~n
    assert by[10.0] < 0.2 * line
    # n x the worker rate restores (near) line rate -- the paper's
    # "several 100 Gbps ports" guidance
    assert by[100.0] > 0.85 * line
    # monotone in between
    ates = [by[r] for r in ATTACHMENTS]
    assert ates == sorted(ates)
