"""Extension: collective latency/bandwidth crossover on the simulator.

SS2.1 names both all-reduce families (ring; halving-doubling [57]) and
SwitchML's design goal is the sub-RTT latency neither can reach (SS2.3).
This bench sweeps tensor size across all three *as packet-level
systems*: halving-doubling wins over the ring at small tensors (2 log n
rounds vs 2 (n-1)); both converge toward their shared bandwidth bound at
large tensors; SwitchML beats both everywhere, and its lead is biggest
exactly where the paper claims -- latency-sensitive small reductions.
"""

from conftest import once

from repro.collectives.hd_simulation import HDJob, HDJobConfig
from repro.collectives.ring_simulation import RingJob, RingJobConfig
from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.report import format_table

SIZES = (512, 8192, 131072, 1048576)
WORKERS = 8


def run_sweep():
    rows = []
    for n_elem in SIZES:
        row = {"elements": n_elem}
        sw = SwitchMLJob(SwitchMLConfig(num_workers=WORKERS, pool_size=128))
        row["switchml"] = sw.all_reduce(num_elements=n_elem, verify=False).max_tat
        hd = HDJob(HDJobConfig(num_workers=WORKERS))
        row["hd"] = hd.all_reduce(num_elements=n_elem, verify=False).max_tat
        ring = RingJob(RingJobConfig(num_workers=WORKERS))
        row["ring"] = ring.all_reduce(num_elements=n_elem, verify=False).max_tat
        rows.append(row)
    return rows


def test_collective_latency_crossover(benchmark, show):
    rows = once(benchmark, run_sweep)

    show(
        "\n"
        + format_table(
            ["elements", "SwitchML", "halving-doubling", "ring",
             "SwitchML lead vs best"],
            [
                [
                    r["elements"],
                    f"{r['switchml'] * 1e6:.0f} us",
                    f"{r['hd'] * 1e6:.0f} us",
                    f"{r['ring'] * 1e6:.0f} us",
                    f"{min(r['hd'], r['ring']) / r['switchml']:.2f}x",
                ]
                for r in rows
            ],
            title=f"Collective TAT vs tensor size ({WORKERS} workers, 10 Gbps)",
        )
    )

    for r in rows:
        # SwitchML ahead of both host-based collectives at every size
        assert r["switchml"] < r["hd"]
        assert r["switchml"] < r["ring"]
    # recursive HD beats the ring at the smallest size (round count)
    assert rows[0]["hd"] < rows[0]["ring"]
    # at large sizes the two host collectives converge (within 40 %)
    big = rows[-1]
    assert big["hd"] / big["ring"] < 1.4 and big["ring"] / big["hd"] < 1.4
    # SwitchML's relative lead is biggest at the small end
    lead_small = min(rows[0]["hd"], rows[0]["ring"]) / rows[0]["switchml"]
    lead_big = min(big["hd"], big["ring"]) / big["switchml"]
    assert lead_small > lead_big
