"""In-band telemetry overhead on the fig4-style workload.

The telemetry layer's contract (ISSUE 7): per-hop stamping everywhere,
but a run without a hub installed pays only one attribute load and an
``is None`` branch per hop -- under 5% wall time on the packet-simulator
hot path.  This bench times the same 8-worker all-reduce three ways
(no obs object at all / null obs (no hub) / hub installed, metrics and
tracing off) and asserts the no-hub path stays inside the budget.

Methodology matches ``test_obs_overhead.py``: interleaved round-robin
runs compared by per-configuration minimum, the robust estimator when
container noise is strictly additive.
"""

import time

from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tuning import pool_size_for_rate
from repro.harness.report import format_table
from repro.obs import Observability

N_ELEM = 32 * 4096
ROUNDS = 5
BUDGET = 0.05  # disabled-path overhead budget (fraction of baseline)


def run_one(obs) -> float:
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=8,
            pool_size=pool_size_for_rate(10.0),
            obs=obs,
        )
    )
    t0 = time.perf_counter()
    job.all_reduce(num_elements=N_ELEM, verify=False)
    return time.perf_counter() - t0


def run_overhead():
    configs = {
        "baseline": lambda: None,
        "no-hub": Observability.off,
        "stamping": lambda: Observability(enabled=False, telemetry=True),
    }
    run_one(None)  # warm-up round, discarded
    times: dict[str, list[float]] = {name: [] for name in configs}
    for _ in range(ROUNDS):
        for name, make in configs.items():
            times[name].append(run_one(make()))
    return {name: min(samples) for name, samples in times.items()}


def test_telemetry_disabled_overhead_under_budget(benchmark, show):
    best = once(benchmark, run_overhead)
    overhead = best["no-hub"] / best["baseline"] - 1.0
    show(
        "\n"
        + format_table(
            ["configuration", "best wall (s)", "vs baseline"],
            [
                [name, f"{best[name]:.3f}",
                 f"{best[name] / best['baseline']:.2f}x"]
                for name in ("baseline", "no-hub", "stamping")
            ],
            title=f"telemetry overhead, fig4 workload ({N_ELEM} elements, "
                  f"best of {ROUNDS} interleaved rounds)",
        )
    )
    assert overhead < BUDGET, (
        f"no-hub overhead {overhead:.1%} exceeds the {BUDGET:.0%} budget"
    )
