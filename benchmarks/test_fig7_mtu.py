"""Figure 7: TAT with 180-byte frames vs an MTU-capable switch.

Paper shape (10 Gbps, 50-500 MB tensors): SwitchML with its 32-element
packets pays "only a modest performance cost" next to the emulated
MTU-capable switch (which would cut header overhead 28.9 % -> 3.4 % and
improve TAT ~31.6 %); the Dedicated PS at MTU sits above both because
of per-packet software processing costs.
"""

from conftest import once

from repro.harness.experiments import fig7_mtu
from repro.harness.report import format_table

TENSOR_MB = (50, 100, 250, 500)


def test_fig7_mtu(benchmark, show):
    rows = once(benchmark, fig7_mtu, tensor_mb=TENSOR_MB)

    show(
        "\n"
        + format_table(
            ["tensor", "SwitchML", "SwitchML(MTU)", "Ded.PS(MTU)",
             "line rate", "line rate(MTU)"],
            [
                [
                    f"{r['tensor_mb']} MB",
                    f"{r['switchml_tat_s'] * 1e3:.0f} ms",
                    f"{r['switchml_mtu_tat_s'] * 1e3:.0f} ms",
                    f"{r['dedicated_ps_mtu_tat_s'] * 1e3:.0f} ms",
                    f"{r['line_rate_tat_s'] * 1e3:.0f} ms",
                    f"{r['line_rate_mtu_tat_s'] * 1e3:.0f} ms",
                ]
                for r in rows
            ],
            title="Figure 7: TAT vs tensor size, small frames vs MTU (10 Gbps)",
        )
    )

    for r in rows:
        # ordering: SwitchML(MTU) < SwitchML < Dedicated PS (MTU)
        assert r["switchml_mtu_tat_s"] < r["switchml_tat_s"]
        assert r["dedicated_ps_mtu_tat_s"] > r["switchml_tat_s"]
        # the MTU improvement sits in the paper's ~26-36 % band
        improvement = 1 - r["switchml_mtu_tat_s"] / r["switchml_tat_s"]
        assert 0.2 < improvement < 0.4
    # TAT linear in tensor size (the paper's flat ATE/s observation)
    assert rows[3]["switchml_tat_s"] / rows[0]["switchml_tat_s"] == \
        __import__("pytest").approx(10.0, rel=0.03)
