"""Figure 6: packets sent per interval during an aggregation under loss.

Paper shape (per-10 ms buckets on a 100 MB tensor): the send rate sits
near the ideal packet rate throughout; 0.01 % loss barely dents it
(TAT 132 -> 138 ms); 1 % loss shows resends, dips, and a stretched tail
(TAT 424 ms) because "some slots are unevenly affected by random losses"
and there is no work stealing.  Scaled here to per-0.2 ms buckets on a
4 MB tensor.
"""

from conftest import once

from repro.harness.experiments import fig6_timeline
from repro.harness.report import format_series

LOSS_RATES = (0.0, 0.0001, 0.01)


def test_fig6_timeline(benchmark, show):
    out = once(
        benchmark, fig6_timeline,
        loss_rates=LOSS_RATES, num_elements=1024 * 1024,
    )

    lines = ["", "Figure 6: worker-0 packets per 0.2 ms bucket"]
    for loss, data in out.items():
        lines.append(
            f"  loss {loss:.2%}: TAT {data['tat_s'] * 1e3:.3f} ms, "
            f"ideal {data['ideal_rate_pps']:.0f} pkts/bucket"
        )
        lines.append("    " + format_series("sent", data["sent"][:12]))
        if sum(c for _, c in data["resent"]):
            lines.append("    " + format_series("resent", data["resent"][:12]))
    show("\n".join(lines))

    clean, mild, heavy = out[0.0], out[0.0001], out[0.01]
    # TAT ordering mirrors the paper's 132 / 138 / 424 ms markers
    assert clean["tat_s"] < mild["tat_s"] < heavy["tat_s"]
    # mild loss barely moves TAT (paper: 132 -> 138 ms, ~5 %)
    assert mild["tat_s"] < 1.15 * clean["tat_s"]
    # clean run has zero resends; heavy has plenty
    assert sum(c for _, c in clean["resent"]) == 0
    assert sum(c for _, c in heavy["resent"]) > 100
    # steady-state send rate approaches the ideal packet rate
    steady = [c for _, c in clean["sent"][1:-1]]
    assert max(steady) > 0.9 * clean["ideal_rate_pps"]
    # the lossy run's tail stretches: its timeline has more buckets
    assert len(heavy["sent"]) > len(clean["sent"])
