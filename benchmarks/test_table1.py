"""Table 1: training throughput (images/s), 8 workers, 10 Gbps, batch 64.

Paper values (percent of ideal):
    inception3  multi-GPU 95.3  NCCL 70.6  SwitchML 95.3
    resnet50    multi-GPU 88.7  NCCL 49.6  SwitchML 76.8
    vgg16       multi-GPU 76.1  NCCL 17.5  SwitchML 38.5
"""

from conftest import once

from repro.harness.experiments import table1
from repro.harness.report import format_table

PAPER = {
    "inception3": {"ideal": 1132, "multi_gpu": 1079, "nccl": 799, "switchml": 1079},
    "resnet50": {"ideal": 1838, "multi_gpu": 1630, "nccl": 911, "switchml": 1412},
    "vgg16": {"ideal": 1180, "multi_gpu": 898, "nccl": 207, "switchml": 454},
}


def test_table1(benchmark, show):
    rows = once(benchmark, table1)

    lines = []
    for row in rows:
        paper = PAPER[row["model"]]
        lines.append(
            [
                row["model"],
                f"{row['ideal']:.0f}",
                f"{row['multi_gpu']:.0f} ({row['multi_gpu_pct']:.1f}%)",
                f"{paper['multi_gpu']} ({100 * paper['multi_gpu'] / paper['ideal']:.1f}%)",
                f"{row['nccl']:.0f} ({row['nccl_pct']:.1f}%)",
                f"{paper['nccl']} ({100 * paper['nccl'] / paper['ideal']:.1f}%)",
                f"{row['switchml']:.0f} ({row['switchml_pct']:.1f}%)",
                f"{paper['switchml']} ({100 * paper['switchml'] / paper['ideal']:.1f}%)",
            ]
        )
    show(
        "\n"
        + format_table(
            [
                "model", "ideal",
                "multi-gpu", "(paper)",
                "nccl", "(paper)",
                "switchml", "(paper)",
            ],
            lines,
            title="Table 1: training throughput, 8 workers, 10 Gbps",
        )
    )

    # Shape assertions: ordering everywhere; SwitchML's fraction of ideal
    # within 10 points of the paper for each model.
    for row in rows:
        paper = PAPER[row["model"]]
        assert row["nccl"] < row["switchml"] <= row["multi_gpu"] * 1.02
        paper_pct = 100 * paper["switchml"] / paper["ideal"]
        assert abs(row["switchml_pct"] - paper_pct) < 10.0
