"""SS6 extension: multi-job tenancy (admission + isolation).

The paper sketches multi-tenant SwitchML: per-job aggregator pools,
admission control against the (small) switch resource budget.  This
bench measures the two claims end to end: many jobs fit (each pool is a
sliver of SRAM), and concurrently-running jobs neither corrupt each
other nor meaningfully slow each other down (they share only the
non-blocking switch).
"""

import numpy as np
from conftest import once

from repro.core.tenancy import AdmissionError, MultiTenantRack, PoolAllocator
from repro.harness.report import format_table


def run_tenancy():
    # admission capacity under a 10% aggregation budget: SRAM would
    # admit hundreds of pools; the chip's front-panel ports bind first
    alloc = PoolAllocator(budget_fraction=0.10)
    admitted = 0
    try:
        while True:
            alloc.admit(num_workers=2, pool_size=128)
            admitted += 1
    except AdmissionError:
        pass

    # solo vs concurrent TAT for identical jobs
    def run_jobs(concurrent: bool):
        rack = MultiTenantRack(num_hosts=8, seed=3)
        a = rack.add_job(num_workers=4, pool_size=32)
        b = rack.add_job(num_workers=4, pool_size=32)
        size = 32 * 32 * 8
        rng = np.random.default_rng(0)
        ta = [rng.integers(-100, 100, size).astype(np.int64) for _ in range(4)]
        tb = [rng.integers(-100, 100, size).astype(np.int64) for _ in range(4)]
        rack.start_job(a, ta)
        if concurrent:
            rack.start_job(b, tb)
        rack.run()
        ra = rack.result(a, size)
        assert ra.completed
        assert np.array_equal(ra.results[0], np.sum(ta, axis=0))
        if concurrent:
            rb = rack.result(b, size)
            assert rb.completed
            assert np.array_equal(rb.results[0], np.sum(tb, axis=0))
        return ra.max_tat

    solo = run_jobs(concurrent=False)
    shared = run_jobs(concurrent=True)
    return admitted, alloc, solo, shared


def test_multi_tenancy(benchmark, show):
    admitted, alloc, solo, shared = once(benchmark, run_tenancy)

    show(
        "\n"
        + format_table(
            ["metric", "value"],
            [
                ["2-worker/128-slot jobs admitted (port-bound)", admitted],
                ["SRAM used by those jobs",
                 f"{alloc.allocated_bytes / 1024:.0f} KB of "
                 f"{4 * alloc.budget_bytes / 1024:.0f} KB budget"],
                ["job A TAT alone (ms)", f"{solo * 1e3:.3f}"],
                ["job A TAT with job B concurrent (ms)", f"{shared * 1e3:.3f}"],
                ["interference", f"{shared / solo - 1:+.1%}"],
            ],
            title="SS6 tenancy: admission capacity and isolation",
        )
    )

    assert admitted == 32  # every front-panel port used; SRAM barely dented
    assert alloc.allocated_bytes < 0.3 * 4 * alloc.budget_bytes
    # jobs share only the non-blocking switch: near-zero interference
    assert shared < 1.15 * solo
