"""Figure 2: effect of pool size on TAT and per-packet RTT.

Paper shape (10 Gbps, 100 MB tensor, s = 32..16384): TAT falls until the
pool covers the BDP (~128 slots), then flattens onto the line-rate TAT;
RTT keeps climbing with s (extra in-flight packets are pure queueing).
We sweep the same knee on a 2 MB tensor on the packet simulator -- ATE/s
is size-insensitive (SS5.3, re-verified in tests/integration).
"""

from conftest import once

from repro.harness.experiments import fig2_pool_size
from repro.harness.report import format_table

POOL_SIZES = (8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig2_pool_size(benchmark, show):
    rows = once(benchmark, fig2_pool_size, pool_sizes=POOL_SIZES)

    show(
        "\n"
        + format_table(
            ["pool size", "TAT (ms)", "TAT @line rate (ms)", "mean RTT (us)"],
            [
                [
                    r["pool_size"],
                    f"{r['tat_s'] * 1e3:.3f}",
                    f"{r['line_rate_tat_s'] * 1e3:.3f}",
                    f"{r['mean_rtt_s'] * 1e6:.1f}",
                ]
                for r in rows
            ],
            title="Figure 2: pool size vs TAT and RTT (10 Gbps, 2 MB tensor)",
        )
    )

    tat = {r["pool_size"]: r["tat_s"] for r in rows}
    rtt = {r["pool_size"]: r["mean_rtt_s"] for r in rows}
    # knee at the paper's deployment value: s = 128
    assert tat[8] > 5 * tat[128]
    assert tat[1024] > 0.95 * tat[128] and tat[1024] < 1.05 * tat[128]
    assert tat[128] < 1.1 * rows[0]["line_rate_tat_s"]
    # RTT grows monotonically past the knee
    assert rtt[1024] > rtt[256] > rtt[64]
