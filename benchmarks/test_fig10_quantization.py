"""Figure 10 / Appendix C: accuracy vs scaling factor.

Paper shape (GoogLeNet on ImageNet): a plateau of scaling factors
spanning many orders of magnitude trains to the unquantized accuracy;
factors that push scaled gradients past int32 (or quantize them to
zero) cause training to diverge or stall.

Substitution (DESIGN.md SS1): an actual numpy MLP on synthetic data,
trained through bit-faithful SwitchML arithmetic (int32 saturation at
workers, 32-bit wraparound in the switch).
"""

from conftest import once

from repro.harness.experiments import fig10_quantization
from repro.harness.report import format_table

FACTORS = (1e-2, 1e0, 1e2, 1e4, 1e6, 1e8, 1e12)


def test_fig10_quantization(benchmark, show):
    rows = once(benchmark, fig10_quantization, scaling_factors=FACTORS)

    show(
        "\n"
        + format_table(
            ["scaling factor", "val accuracy", "diverged"],
            [
                [
                    "none (float)" if r["scaling_factor"] is None
                    else f"{r['scaling_factor']:.0e}",
                    f"{r['accuracy']:.3f}",
                    r["diverged"],
                ]
                for r in rows
            ],
            title="Figure 10: accuracy vs scaling factor (quantized SGD)",
        )
    )

    reference = rows[0]["accuracy"]
    accuracy = {r["scaling_factor"]: r for r in rows[1:]}
    # the plateau spans at least four orders of magnitude
    plateau = [1e2, 1e4, 1e6, 1e8]
    for f in plateau:
        assert accuracy[f]["accuracy"] >= reference - 0.05
    # both cliffs exist
    assert accuracy[1e-2]["accuracy"] < reference - 0.1  # rounds to zero
    huge = accuracy[1e12]
    assert huge["diverged"] or huge["accuracy"] < reference - 0.1  # overflow
