"""SS6 extension: multi-rack hierarchical aggregation (experiment X2).

The paper sketches but cannot test this ("we are unable to test this
approach due to testbed limitations").  The simulator can: we verify the
bandwidth-optimality claim -- each rack uplink carries one worker's
worth of traffic regardless of rack size -- and that loss recovery
composes across layers.
"""

import numpy as np
from conftest import once

from repro.core.hierarchy import HierarchicalConfig, HierarchicalJob
from repro.harness.report import format_table
from repro.net.loss import BernoulliLoss


def run_hierarchy():
    rows = []
    for workers_per_rack in (2, 4, 8):
        job = HierarchicalJob(
            HierarchicalConfig(
                num_racks=2, workers_per_rack=workers_per_rack, pool_size=16,
            )
        )
        n = 2 * workers_per_rack
        tensors = [np.full(32 * 16 * 6, w, dtype=np.int64) for w in range(n)]
        out = job.all_reduce(tensors)
        rows.append(
            {
                "workers_per_rack": workers_per_rack,
                "completed": out.completed,
                "tat_s": out.max_tat,
                "uplink_frames": out.uplink_frames[0],
                "worker_frames": out.worker_uplink_frames[0],
            }
        )

    lossy = HierarchicalJob(
        HierarchicalConfig(
            num_racks=3, workers_per_rack=3, pool_size=8,
            loss_factory=lambda: BernoulliLoss(0.005), seed=9,
        )
    )
    rng = np.random.default_rng(0)
    tensors = [rng.integers(-100, 100, 32 * 8 * 8).astype(np.int64)
               for _ in range(9)]
    lossy_out = lossy.all_reduce(tensors)
    return rows, lossy_out


def test_hierarchy_scaling(benchmark, show):
    rows, lossy_out = once(benchmark, run_hierarchy)

    show(
        "\n"
        + format_table(
            ["workers/rack", "TAT (ms)", "uplink frames", "1-worker frames",
             "uplink cost"],
            [
                [
                    r["workers_per_rack"],
                    f"{r['tat_s'] * 1e3:.3f}",
                    r["uplink_frames"],
                    r["worker_frames"],
                    f"{r['uplink_frames'] / r['worker_frames']:.2f}x",
                ]
                for r in rows
            ],
            title="SS6: two-layer hierarchy, uplink cost vs rack size",
        )
        + f"\n3x3 tree with 0.5% loss on every link: completed="
        f"{lossy_out.completed}, retransmissions={lossy_out.retransmissions}"
    )

    for r in rows:
        assert r["completed"]
        # uplink carries one worker's worth of frames -- NOT rack_size x
        assert r["uplink_frames"] == r["worker_frames"]
    assert lossy_out.completed  # loss recovery composes across layers
