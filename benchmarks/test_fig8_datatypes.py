"""Figure 8: tensor scaling and type conversion overheads.

Paper shape (100 MB, 10 Gbps): aggregating native int32 vs scaling and
converting float32 is indistinguishable (the SSE/AVX conversion cost is
negligible -- here we also *measure* the numpy conversion kernels to
re-verify that claim), while the float16 wire format halves TAT.
"""

import time

import numpy as np
from conftest import once

from repro.harness.experiments import fig8_datatypes
from repro.harness.report import format_table
from repro.quant.fixedpoint import dequantize, quantize

TENSOR_ELEMENTS = 25_000_000


def measured_conversion_overhead() -> float:
    """Seconds to scale+convert 100 MB of float32 both ways (the
    float32-to-int32 -> htonl -> ntohl -> int32-to-float32 chain)."""
    values = np.random.default_rng(0).normal(size=TENSOR_ELEMENTS // 10)
    start = time.perf_counter()
    q = quantize(values, 1e6)
    wire = q.astype(">i4")  # htonl
    back = wire.astype(np.int64)  # ntohl
    dequantize(back, 1e6)
    return (time.perf_counter() - start) * 10  # scale to full tensor


def run_fig8():
    rows = fig8_datatypes(num_elements=TENSOR_ELEMENTS)
    return rows, measured_conversion_overhead()


def test_fig8_datatypes(benchmark, show):
    rows, conversion_s = once(benchmark, run_fig8)

    show(
        "\n"
        + format_table(
            ["dtype", "SwitchML TAT", "Gloo TAT", "TAT @line rate"],
            [
                [
                    r["dtype"],
                    f"{r['switchml_tat_s'] * 1e3:.0f} ms",
                    f"{r['gloo_tat_s'] * 1e3:.0f} ms",
                    f"{r['line_rate_tat_s'] * 1e3:.0f} ms",
                ]
                for r in rows
            ],
            title="Figure 8: TAT by wire data type (100 MB, 10 Gbps)",
        )
        + f"\nmeasured numpy scale+convert round trip for 100 MB: "
        f"{conversion_s * 1e3:.0f} ms (amortized across the pipeline; "
        "the paper's SSE/AVX kernels make it negligible)"
    )

    by = {r["dtype"]: r for r in rows}
    # float32 conversion overhead is negligible (<= 5 %)
    assert by["float32"]["switchml_tat_s"] < 1.05 * by["int32"]["switchml_tat_s"]
    # float16 halves TAT ("using float16 doubles the performance")
    ratio = by["int32"]["switchml_tat_s"] / by["float16"]["switchml_tat_s"]
    assert 1.9 < ratio < 2.1
    # SwitchML below Gloo for every dtype
    for r in rows:
        assert r["switchml_tat_s"] < r["gloo_tat_s"]
