"""Figure 5: TAT inflation under packet loss.

Paper shape (log y-axis): at 0.01 % loss everyone sits near 1x; at 0.1 %
and above, SwitchML "completes tensor aggregation significantly faster
than Gloo" -- TCP throughput collapses ~1/sqrt(p) while SwitchML's
per-slot retransmission inflates TAT only modestly (~2x at 1 %).

SwitchML is measured on the packet simulator (loss injected on every
link); Gloo/NCCL inflation follows the Mathis TCP loss model.
"""

from conftest import once

from repro.harness.experiments import fig5_loss_inflation
from repro.harness.report import format_table

LOSS_RATES = (0.0001, 0.001, 0.01)


def test_fig5_loss_inflation(benchmark, show):
    rows = once(
        benchmark, fig5_loss_inflation,
        loss_rates=LOSS_RATES, num_elements=1024 * 1024,
    )

    show(
        "\n"
        + format_table(
            ["loss", "SwitchML", "Gloo (TCP)", "NCCL (TCP)"],
            [
                [
                    f"{r['loss']:.2%}",
                    f"{r['switchml_inflation']:.2f}x",
                    f"{r['gloo_inflation']:.2f}x",
                    f"{r['nccl_inflation']:.2f}x",
                ]
                for r in rows
            ],
            title="Figure 5: TAT inflation vs loss rate (10 Gbps)",
        )
    )

    by = {r["loss"]: r for r in rows}
    # 0.01 % loss: minimal effect on either system (paper: "only
    # minimally affects TAT in either case")
    assert by[0.0001]["switchml_inflation"] < 1.3
    assert by[0.0001]["gloo_inflation"] < 1.5
    # 1 % loss: SwitchML stays within a few x; TCP blows up far beyond
    assert by[0.01]["switchml_inflation"] < 4.0
    assert by[0.01]["gloo_inflation"] > 2 * by[0.01]["switchml_inflation"]
    # monotone in loss
    inflations = [r["switchml_inflation"] for r in rows]
    assert inflations == sorted(inflations)
