"""Failure recovery time vs detection timeout and pool size.

The control plane's time-to-recover decomposes as detection (dominated
by the membership confirm timeout) + drain (fixed fence window) + the
re-run of the tensor.  This bench sweeps the confirm timeout to show the
detection term scaling linearly, and the pool size to show the repair
term is insensitive to pool geometry -- the knobs an operator actually
has.
"""

import numpy as np
from conftest import once

from repro.controlplane import (
    ControlPlaneConfig,
    Controller,
    CrashWorker,
    FaultInjector,
    FaultPlan,
)

N_ELEMENTS = 32 * 8 * 500  # ~0.7 ms TAT at 10 Gbps: the crash lands mid-run


def crash_run(confirm_after_s, pool_size):
    ctl = Controller(
        ControlPlaneConfig(
            num_workers=4,
            pool_size=pool_size,
            suspect_after_s=confirm_after_s * 0.6,
            confirm_after_s=confirm_after_s,
        )
    )
    rng = np.random.default_rng(0)
    tensors = [
        rng.integers(-100, 100, N_ELEMENTS).astype(np.int64) for _ in range(4)
    ]
    FaultInjector(
        ctl, FaultPlan([CrashWorker(member=2, at_s=0.3e-3)])
    ).arm()
    result = ctl.run_collective(tensors, deadline_s=5.0)
    assert result.completed and result.survivors == [0, 1, 3]
    rec = result.recoveries[0]
    return {
        "detect_ms": (rec.detect_time - 0.3e-3) * 1e3,
        "recover_ms": rec.recovery_time * 1e3,
        "total_ms": result.elapsed_s * 1e3,
        "availability": result.availability,
    }


def sweep():
    timeouts = (2e-3, 5e-3, 10e-3, 20e-3)
    by_timeout = [(t, crash_run(t, pool_size=16)) for t in timeouts]
    pools = (8, 16, 64)
    by_pool = [(s, crash_run(5e-3, pool_size=s)) for s in pools]
    return by_timeout, by_pool


def test_recovery_time_scaling(benchmark, show):
    by_timeout, by_pool = once(benchmark, sweep)

    lines = ["\nrecovery time vs detection timeout (4 workers, crash at 0.3 ms)"]
    lines.append("  confirm(ms)  detect(ms)  recover(ms)  run total(ms)  avail")
    for t, r in by_timeout:
        lines.append(
            f"  {t * 1e3:11.0f}  {r['detect_ms']:10.3f}  "
            f"{r['recover_ms']:11.3f}  {r['total_ms']:13.3f}  "
            f"{r['availability']:.1%}"
        )
    lines.append("recovery time vs pool size (confirm timeout 5 ms)")
    lines.append("  pool  recover(ms)")
    for s, r in by_pool:
        lines.append(f"  {s:4d}  {r['recover_ms']:11.3f}")
    show("\n".join(lines))

    # Detection latency tracks the confirm timeout to within a sweep or
    # two (the silence clock starts at the last pre-crash heartbeat, and
    # sweep times accumulate float rounding).
    for t, r in by_timeout:
        assert t * 1e3 - 1.0 <= r["detect_ms"] <= t * 1e3 + 2.5
    # The repair term (detect -> restart: correlation + drain + restart)
    # is independent of the detection timeout; only the end-to-end run
    # time grows with it.
    recover = [r["recover_ms"] for _, r in by_timeout]
    assert max(recover) - min(recover) < 0.1
    totals = [r["total_ms"] for _, r in by_timeout]
    assert totals == sorted(totals) and totals[-1] > totals[0]
    # Repair (fence + drain + restart) is pool-size insensitive: all
    # configurations share the detection and drain terms, so spreads stay
    # within a couple of milliseconds.
    pool_recover = [r["recover_ms"] for _, r in by_pool]
    assert max(pool_recover) - min(pool_recover) < 2.0
