"""Figure 3: training speedup over NCCL, nine models, 10 and 100 Gbps.

Paper values: 10 Gbps  alexnet 2.2, googlenet 1.3, inception3 1.3,
inception4 1.2, resnet50 1.5, resnet101 1.8, vgg11 3.0, vgg16 2.2,
vgg19 2.7; 100 Gbps  2.6/1.4/1.5/1.2/1.8/1.6/2.8/2.8/2.6.
"""

from conftest import once

from repro.harness.experiments import fig3_speedups
from repro.harness.report import format_table

PAPER = {
    "alexnet": (2.2, 2.6),
    "googlenet": (1.3, 1.4),
    "inception3": (1.3, 1.5),
    "inception4": (1.2, 1.2),
    "resnet50": (1.5, 1.8),
    "resnet101": (1.8, 1.6),
    "vgg11": (3.0, 2.8),
    "vgg16": (2.2, 2.8),
    "vgg19": (2.7, 2.6),
}


def test_fig3_speedups(benchmark, show):
    rows = once(benchmark, fig3_speedups)

    show(
        "\n"
        + format_table(
            ["model", "10G", "(paper)", "100G", "(paper)"],
            [
                [
                    r["model"],
                    f"{r['speedup_10g']:.2f}x",
                    f"{PAPER[r['model']][0]:.1f}x",
                    f"{r['speedup_100g']:.2f}x",
                    f"{PAPER[r['model']][1]:.1f}x",
                ]
                for r in rows
            ],
            title="Figure 3: SwitchML training speedup over Horovod+NCCL",
        )
    )

    by_model = {r["model"]: r for r in rows}
    # Every model speeds up (>= 1x), none beyond the paper's ceiling band.
    for r in rows:
        assert 0.99 <= r["speedup_10g"] < 4.0
        assert 0.99 <= r["speedup_100g"] < 4.0
    # Communication-bound families gain the most (SS5.2): VGG/AlexNet over
    # the inception/googlenet end at 10 Gbps.
    heavy = min(by_model[m]["speedup_10g"] for m in ("vgg16", "vgg19", "resnet101"))
    light = max(by_model[m]["speedup_10g"] for m in ("googlenet", "inception4"))
    assert heavy > light
    # Within-band agreement: mean absolute deviation from the paper < 0.6x.
    deviations = [
        abs(by_model[m]["speedup_10g"] - PAPER[m][0]) for m in PAPER
    ] + [abs(by_model[m]["speedup_100g"] - PAPER[m][1]) for m in PAPER]
    assert sum(deviations) / len(deviations) < 0.6
