"""SS6 extension: self-clocking under stragglers/congestion (X3).

The paper argues (SS6, "Lack of congestion control") that the tight
coupling between the communication loop and the pool makes the system
self-clock to the rate of the slowest worker: a congested or late worker
throttles everyone instead of causing loss blow-up.  We inject a
straggler (late start) and a congested downlink and measure both.
"""

import numpy as np
from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.report import format_table
from repro.net.link import LinkSpec


def run_straggler():
    # pool sized for line rate so bandwidth (not latency) is binding
    n_elem = 32 * 128 * 32
    rows = []
    for delay_ms in (0.0, 1.0, 4.0):
        job = SwitchMLJob(
            SwitchMLConfig(num_workers=4, pool_size=128, timeout_s=50e-3)
        )
        start_times = [0.0, 0.0, 0.0, delay_ms * 1e-3]
        out = job.all_reduce(
            num_elements=n_elem, start_times=start_times, verify=False
        )
        rows.append(
            {
                "delay_ms": delay_ms,
                "tat_s": out.max_tat,
                "retransmissions": out.retransmissions,
                "completed": out.completed,
            }
        )

    # congestion: one worker's downlink runs at a third of the rate
    slow = SwitchMLJob(SwitchMLConfig(num_workers=4, pool_size=128,
                                      timeout_s=50e-3))
    slow.rack.downlinks[3].spec = LinkSpec(rate_gbps=3.3)
    congested = slow.all_reduce(num_elements=n_elem, verify=False)
    return rows, congested


def test_straggler_self_clocking(benchmark, show):
    rows, congested = once(benchmark, run_straggler)

    show(
        "\n"
        + format_table(
            ["straggler delay", "TAT (ms)", "retransmissions"],
            [
                [f"{r['delay_ms']:g} ms", f"{r['tat_s'] * 1e3:.3f}",
                 r["retransmissions"]]
                for r in rows
            ],
            title="SS6: self-clocking with a late worker (4 workers, 10G)",
        )
        + f"\ncongested downlink (3.3 Gbps on one worker): "
        f"TAT {congested.max_tat * 1e3:.3f} ms, "
        f"retransmissions {congested.retransmissions}"
    )

    base = rows[0]["tat_s"]
    for r in rows:
        assert r["completed"]
        # the whole job shifts by ~the straggler delay -- no more, no less
        assert r["tat_s"] >= base
        assert r["tat_s"] < base + r["delay_ms"] * 1e-3 + 0.5e-3
        # self-clocking absorbs the skew without retransmission storms
        assert r["retransmissions"] == 0
    # congestion: the system slows to the bottleneck without loss blow-up
    assert congested.completed
    assert congested.retransmissions == 0
    assert congested.max_tat > 2.0 * base
