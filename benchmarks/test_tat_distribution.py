"""SS5.1 methodology: TAT distributions over 100 repeated tensors.

The paper reports every microbenchmark as a violin plot over 100
aggregations of the same size, highlighting median/min/max.  This bench
runs that exact procedure on the simulator for the clean rack and a 1 %
lossy rack, printing the violin statistics and a text violin.
"""

from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.harness.distributions import measure_tat_distribution
from repro.net.loss import BernoulliLoss

N_ELEMENTS = 32 * 128 * 8
REPETITIONS = 100


def run_distributions():
    clean = measure_tat_distribution(
        SwitchMLJob(SwitchMLConfig(num_workers=8, pool_size=128, seed=1)),
        num_elements=N_ELEMENTS,
        repetitions=REPETITIONS,
    )
    lossy = measure_tat_distribution(
        SwitchMLJob(
            SwitchMLConfig(
                num_workers=8, pool_size=128, timeout_s=1e-4,
                loss_factory=lambda: BernoulliLoss(0.01), seed=1,
            )
        ),
        num_elements=N_ELEMENTS,
        repetitions=REPETITIONS,
    )
    return clean, lossy


def test_tat_distribution(benchmark, show):
    clean, lossy = once(benchmark, run_distributions)

    show(
        "\nSS5.1: TAT over 100 aggregations of the same tensor "
        f"({N_ELEMENTS * 4 // 1024} KB, 8 workers, 10 Gbps)"
        f"\n  lossless: {clean.summary()}"
        f"\n  1% loss : {lossy.summary()}"
        "\n  1% loss violin:"
        "\n" + lossy.violin(width=36, bins=8)
    )

    # 800 samples each (100 repetitions x 8 workers)
    assert len(clean.samples) == REPETITIONS * 8
    # the lossless violin is a needle; loss fattens it and shifts it up
    assert clean.relative_spread < 0.05
    assert lossy.relative_spread > 0.2
    assert lossy.median > clean.median
    assert lossy.maximum > lossy.median * 1.1
