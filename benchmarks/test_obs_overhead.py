"""Observability overhead on the fig4-style microbenchmark workload.

The obs layer's contract (ISSUE 2): instrumentation everywhere, but a
run that doesn't opt in pays only no-op method calls -- under 5% wall
time on the packet-simulator hot path.  This bench times the same
8-worker all-reduce three ways (no obs / obs disabled / obs fully on)
and asserts the disabled path stays inside the budget.

Methodology: the workload is a ~1 s burst of pure Python, and container
wall time jitters by tens of percent between sequential blocks, so the
configurations are *interleaved* round-robin and compared by their
per-configuration minimum -- the standard robust estimator when noise
is strictly additive.
"""

import time

from conftest import once

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tuning import pool_size_for_rate
from repro.harness.report import format_table
from repro.obs import Observability

N_ELEM = 32 * 4096
ROUNDS = 5
BUDGET = 0.05  # disabled-path overhead budget (fraction of baseline)


def run_one(obs) -> float:
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=8,
            pool_size=pool_size_for_rate(10.0),
            obs=obs,
        )
    )
    t0 = time.perf_counter()
    job.all_reduce(num_elements=N_ELEM, verify=False)
    return time.perf_counter() - t0


def run_overhead():
    configs = {
        "baseline": lambda: None,
        "disabled": Observability.off,
        "enabled": Observability,
    }
    run_one(None)  # warm-up round, discarded
    times: dict[str, list[float]] = {name: [] for name in configs}
    for _ in range(ROUNDS):
        for name, make in configs.items():
            times[name].append(run_one(make()))
    return {name: min(samples) for name, samples in times.items()}


def test_obs_disabled_overhead_under_budget(benchmark, show):
    best = once(benchmark, run_overhead)
    overhead = best["disabled"] / best["baseline"] - 1.0
    show(
        "\n"
        + format_table(
            ["configuration", "best wall (s)", "vs baseline"],
            [
                [name, f"{best[name]:.3f}",
                 f"{best[name] / best['baseline']:.2f}x"]
                for name in ("baseline", "disabled", "enabled")
            ],
            title=f"obs overhead, fig4 workload ({N_ELEM} elements, "
                  f"best of {ROUNDS} interleaved rounds)",
        )
    )
    assert overhead < BUDGET, (
        f"disabled-path overhead {overhead:.1%} exceeds the "
        f"{BUDGET:.0%} budget"
    )
