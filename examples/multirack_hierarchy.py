#!/usr/bin/env python3
"""Scaling beyond a rack: the SS6 hierarchical composition.

Builds a two-layer tree -- three racks of four workers, each rack switch
aggregating its workers and forwarding one partial-aggregate stream to a
root switch -- runs an all-reduce across all twelve workers, and checks
the bandwidth-optimality claim: every rack uplink carries exactly one
worker's worth of frames, regardless of how many workers sit below it.

Run:  python examples/multirack_hierarchy.py
"""

import numpy as np

from repro.core.hierarchy import HierarchicalConfig, HierarchicalJob
from repro.net.loss import BernoulliLoss


def main() -> None:
    cfg = HierarchicalConfig(
        num_racks=3,
        workers_per_rack=4,
        pool_size=32,
        loss_factory=lambda: BernoulliLoss(0.002),  # loss on every link
        seed=5,
    )
    job = HierarchicalJob(cfg)
    n = cfg.num_racks * cfg.workers_per_rack

    rng = np.random.default_rng(0)
    tensors = [
        rng.integers(-500, 500, 32 * 32 * 12).astype(np.int64) for _ in range(n)
    ]
    print(f"aggregating across {cfg.num_racks} racks x {cfg.workers_per_rack} "
          f"workers (loss on every link: 0.2%) ...")
    out = job.all_reduce(tensors)  # verify=True inside

    print(f"completed: {out.completed}; aggregate bit-exact on all {n} workers")
    print(f"TAT {out.max_tat * 1e3:.3f} ms; worker retransmissions: "
          f"{out.retransmissions}")

    per_worker = out.worker_uplink_frames[0]
    print("\nbandwidth optimality (SS6):")
    print(f"  frames sent by one worker          : {per_worker}")
    for r, frames in enumerate(out.uplink_frames):
        print(f"  frames on rack{r} -> root uplink     : {frames} "
              f"({frames / per_worker:.2f}x one worker)")
    print("each uplink carries ONE aggregate stream, not one per worker --")
    print("the cost is proportional to the number of upstream ports, not n.")

    for r, prog in enumerate(job.rack_programs):
        print(f"  rack{r}: partials forwarded {prog.partials_forwarded}, "
              f"re-forwarded {prog.partial_retransmits}, "
              f"unicast replies {prog.unicast_replies}")


if __name__ == "__main__":
    main()
