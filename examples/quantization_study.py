#!/usr/bin/env python3
"""The scaling-factor study (paper SS3.7, Appendix C, Figure 10).

1. Profiles warm-up gradients and picks the Theorem 2 scaling factor
   automatically.
2. Trains a real (numpy) MLP with data-parallel SGD where gradients are
   aggregated through SwitchML's exact fixed-point arithmetic -- int32
   saturation at workers, 32-bit wraparound in the switch -- across a
   sweep of scaling factors, reproducing Figure 10's plateau-with-cliffs.
3. Re-runs one plateau point with every gradient travelling packet by
   packet through the simulated switch.

Run:  python examples/quantization_study.py
"""

import numpy as np

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.mlfw.datasets import make_classification
from repro.mlfw.realtrain import (
    QuantizedAggregator,
    SwitchMLSimAggregator,
    train_mlp,
)
from repro.quant.profiler import choose_scaling_factor, profile_gradients
from repro.quant.theory import aggregation_error_bound


def main() -> None:
    num_workers = 4
    dataset = make_classification(num_samples=1600, seed=3)

    # --- automatic f selection from warm-up gradients (Appendix C) ----
    rng = np.random.default_rng(0)
    warmup = [rng.normal(scale=0.5, size=1000) for _ in range(20)]
    profile = profile_gradients(warmup)
    f_auto = choose_scaling_factor(profile, num_workers)
    print(f"profiled max |gradient| = {profile.max_abs:.3f} over "
          f"{profile.iterations} warm-up tensors")
    print(f"Theorem 2 scaling factor f = {f_auto:.3g} "
          f"(per-element error bound n/f = "
          f"{aggregation_error_bound(num_workers, f_auto):.3g})")

    # --- Figure 10 sweep ------------------------------------------------
    reference = train_mlp(dataset, num_workers=num_workers, epochs=10, seed=2)
    print(f"\nunquantized reference accuracy: {reference.val_accuracy:.3f}")
    print(f"{'scaling factor':>16}  {'val accuracy':>12}  outcome")
    for f in (1e-3, 1e-1, 1e1, 1e3, 1e5, 1e7, 1e9, 1e13):
        result = train_mlp(
            dataset, num_workers=num_workers, epochs=10, seed=2,
            aggregator=QuantizedAggregator(f),
        )
        if result.diverged:
            outcome = "DIVERGED (int32 overflow wraps in the switch)"
        elif result.val_accuracy < reference.val_accuracy - 0.1:
            outcome = "degraded" + (
                " (updates round to zero)" if f < 1 else ""
            )
        else:
            outcome = "plateau -- matches unquantized"
        print(f"{f:16.0e}  {result.val_accuracy:12.3f}  {outcome}")

    # --- one plateau point through the packet simulator -----------------
    print("\nre-running f = 1e6 with gradients crossing the simulated "
          "switch packet by packet ...")
    job = SwitchMLJob(SwitchMLConfig(num_workers=num_workers, pool_size=16))
    agg = SwitchMLSimAggregator(job, scaling_factor=1e6)
    result = train_mlp(dataset, num_workers=num_workers, epochs=3, seed=2,
                       aggregator=agg)
    print(f"accuracy {result.val_accuracy:.3f} after 3 epochs; "
          f"{agg.rounds} simulated all-reduce rounds")


if __name__ == "__main__":
    main()
