#!/usr/bin/env python3
"""Distributed training throughput across communication strategies.

Reproduces the Table 1 / Figure 3 view for any zoo model: images/s for
Ideal, single-node Multi-GPU, Horovod+NCCL, Gloo, and SwitchML at 10 and
100 Gbps, with the compute/communication-overlap iteration model.

Run:  python examples/train_cluster.py [model]
      (model defaults to resnet50; try vgg16 or inception3)
"""

import sys

from repro.collectives.base import Strategy
from repro.harness.report import format_table
from repro.mlfw.training import ideal_throughput, training_throughput
from repro.mlfw.zoo import MODEL_ZOO


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    if model not in MODEL_ZOO:
        raise SystemExit(f"unknown model {model!r}; pick one of {sorted(MODEL_ZOO)}")
    spec = MODEL_ZOO[model]
    num_workers = 8

    print(f"model {model}: {spec.params_millions:g} M parameters "
          f"({spec.update_bytes / 1e6:.0f} MB update), "
          f"{spec.single_gpu_images_s:g} img/s per GPU at batch {spec.batch_size}")
    ideal = ideal_throughput(model, num_workers)

    rows = []
    for rate in (10.0, 100.0):
        for label, strategy in (
            ("multi-GPU (1 node)", Strategy.MULTI_GPU),
            ("Gloo ring (TCP)", Strategy.GLOO),
            ("Horovod + NCCL", Strategy.NCCL),
            ("SwitchML", Strategy.SWITCHML),
        ):
            tput = training_throughput(model, strategy, num_workers, rate)
            nccl = training_throughput(model, Strategy.NCCL, num_workers, rate)
            rows.append(
                [
                    f"{rate:g} Gbps",
                    label,
                    f"{tput:.0f}",
                    f"{tput / ideal:.1%}",
                    f"{tput / nccl:.2f}x",
                ]
            )
    print()
    print(
        format_table(
            ["network", "strategy", "images/s", "of ideal", "vs NCCL"],
            rows,
            title=f"{num_workers}-worker training throughput (ideal = {ideal:.0f} img/s)",
        )
    )
    print()
    print("expected shape (paper Table 1 / Fig. 3): SwitchML > NCCL > Gloo at")
    print("both speeds; communication-heavy models (vgg16) gain the most.")


if __name__ == "__main__":
    main()
