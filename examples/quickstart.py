#!/usr/bin/env python3
"""Quickstart: one in-network all-reduce on a simulated rack.

Builds the paper's default deployment -- 8 workers, 10 Gbps links, a
programmable ToR switch running the Algorithm 3 aggregation program with
a 128-slot pool -- pushes one 4 MB gradient tensor through it, verifies
the result bit-exactly, and compares the measured tensor aggregation
time (TAT) against the header-limited line rate.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SwitchMLConfig, SwitchMLJob
from repro.collectives.models import line_rate_ate
from repro.core.tuning import pool_size_for_rate
from repro.net.link import LinkSpec


def main() -> None:
    rate_gbps = 10.0
    num_workers = 8
    num_elements = 1_048_576  # 4 MB of int32 gradients

    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=num_workers,
            pool_size=pool_size_for_rate(rate_gbps),
            link=LinkSpec(rate_gbps=rate_gbps),
        )
    )

    # Each worker contributes a different gradient tensor.
    rng = np.random.default_rng(0)
    tensors = [
        rng.integers(-10_000, 10_000, num_elements).astype(np.int64)
        for _ in range(num_workers)
    ]

    print(f"aggregating {num_elements:,} elements across {num_workers} workers "
          f"at {rate_gbps:g} Gbps ...")
    result = job.all_reduce(tensors)  # verify=True checks exactness

    expected = np.sum(tensors, axis=0)
    assert np.array_equal(result.results[0], expected)
    print("result verified: every worker holds the exact integer sum")

    ate = result.aggregated_elements_per_second(num_elements)
    line = line_rate_ate(rate_gbps)
    print(f"TAT                 : {result.max_tat * 1e3:8.3f} ms")
    print(f"mean per-packet RTT : {result.mean_rtt * 1e6:8.1f} us")
    print(f"ATE/s               : {ate / 1e6:8.1f} M  "
          f"({ate / line:.1%} of the 180-byte-frame line rate)")
    print(f"switch multicasts   : {result.switch_multicasts:,}")
    print(f"retransmissions     : {result.retransmissions} (lossless run)")


if __name__ == "__main__":
    main()
