#!/usr/bin/env python3
"""A Clos fabric surviving the death of its aggregation switch.

Builds a 2-tier spine-leaf fabric -- four leaf racks of four workers
each under two spines -- and runs a 16-worker all-reduce with the
aggregation pool homed on the ECMP-selected spine.  Mid-run, that spine
fail-stops: program, registers, and local CPU gone, no goodbye.  The
fabric controller notices through missed trunk beacons, re-homes the
pool on the survivor (lease renewed, epoch + 1), replays every worker
from the fleet-wide completed prefix, and the run finishes with the
exact integer sum on all sixteen workers -- the single-rack recovery
story (pool-epoch fencing) lifted to a multi-switch fabric.

Run:  python examples/fabric_demo.py
"""

import numpy as np

from repro.net.fabric import (
    CrashSpine,
    FabricConfig,
    FabricFaultInjector,
    FabricFaultPlan,
    FabricJob,
)
from repro.obs import Observability


def main() -> None:
    cfg = FabricConfig(
        num_leaves=4,
        num_spines=2,
        workers_per_leaf=4,
        pool_size=16,
        seed=3,
        obs=Observability(tracing_enabled=False),
    )
    job = FabricJob(cfg)
    n = cfg.num_workers
    doomed = job.active_spine

    print(f"fabric: {cfg.num_leaves} leaves x {cfg.workers_per_leaf} workers, "
          f"{cfg.num_spines} spines; pool homed on spine{doomed} (ECMP)")
    print(f"arming fault: spine{doomed} fail-stops at t=0.2 ms, mid-aggregation\n")

    plan = FabricFaultPlan().add(CrashSpine(spine=doomed, at_s=2e-4))
    FabricFaultInjector(job, plan).arm()

    rng = np.random.default_rng(11)
    tensors = [
        rng.integers(-50, 50, 32 * 8 * 40).astype(np.int64) for _ in range(n)
    ]
    out = job.all_reduce(tensors, deadline_s=5.0)  # verify=True inside

    print(f"completed: {out.completed}; aggregate bit-exact on all {n} workers")
    print(f"elapsed {out.elapsed_s * 1e3:.3f} ms sim time; "
          f"retransmissions {out.retransmissions}; "
          f"stale-epoch fence drops {out.stale_epoch_drops}")
    for r in out.reroutes:
        print(f"reroute [{r.cause}]: spine{r.from_spine} -> spine{r.to_spine}, "
              f"epoch {r.epoch_before} -> {r.epoch_after}, replayed from "
              f"element {r.resumed_from_element}, recovery "
              f"{r.recovery_time * 1e3:.3f} ms "
              f"(of which detection {r.detection_lag * 1e3:.3f} ms)")

    print()
    print(job.dashboard().summary())


if __name__ == "__main__":
    main()
