#!/usr/bin/env python3
"""The SS6 / Appendix D roadmap, built and measured.

The paper closes with directions it could not evaluate on its testbed.
This example runs three of them:

1. **Multi-job tenancy** -- two training jobs sharing one switch, each
   with its own admitted aggregator pool, verified isolated and exact.
2. **Adaptive retransmission timeout** -- SS6's "adapt the timeout to
   the RTT", as a fixed-vs-adaptive ablation under 1% loss.
3. **Encrypted aggregation** -- Appendix D's Paillier sketch end to end:
   the switch sums gradients it cannot read.

Run:  python examples/beyond_the_paper.py
"""

import time

import numpy as np

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tenancy import MultiTenantRack
from repro.crypto import encrypted_allreduce, generate_keypair
from repro.net.loss import BernoulliLoss


def tenancy_demo() -> None:
    print("=== 1. multi-job tenancy (SS6) ===")
    rack = MultiTenantRack(num_hosts=8)
    job_a = rack.add_job(num_workers=4, pool_size=64)
    job_b = rack.add_job(num_workers=4, pool_size=32)
    rng = np.random.default_rng(0)
    size = 32 * 64 * 8
    tensors_a = [rng.integers(-100, 100, size).astype(np.int64) for _ in range(4)]
    tensors_b = [rng.integers(-100, 100, size).astype(np.int64) for _ in range(4)]
    rack.start_job(job_a, tensors_a)
    rack.start_job(job_b, tensors_b)
    rack.run()
    for job_id, tensors in ((job_a, tensors_a), (job_b, tensors_b)):
        result = rack.result(job_id, size)
        exact = np.array_equal(result.results[0], np.sum(tensors, axis=0))
        print(f"  job {job_id}: completed={result.completed}, "
              f"TAT {result.max_tat * 1e3:.3f} ms, exact={exact}")
    budget = rack.allocator
    print(f"  switch aggregation budget used: "
          f"{budget.allocated_bytes / 1024:.1f} KB of "
          f"{budget.budget_bytes / 1024:.0f} KB\n")


def adaptive_timeout_demo() -> None:
    print("=== 2. adaptive retransmission timeout (SS6) ===")
    n_elem = 32 * 128 * 16
    for mode in ("fixed", "adaptive"):
        job = SwitchMLJob(
            SwitchMLConfig(
                num_workers=4, pool_size=128,
                timeout_mode=mode, timeout_s=1e-3,
                loss_factory=lambda: BernoulliLoss(0.01), seed=5,
            )
        )
        out = job.all_reduce(num_elements=n_elem, verify=False)
        rto = job.workers[0].current_timeout()
        print(f"  {mode:8s}: TAT {out.max_tat * 1e3:7.3f} ms, "
              f"final RTO {rto * 1e6:7.1f} us, "
              f"retransmissions {out.retransmissions}")
    print()


def encrypted_demo() -> None:
    print("=== 3. encrypted aggregation (Appendix D) ===")
    keys = generate_keypair(bits=256, seed=1)
    rng = np.random.default_rng(2)
    updates = [rng.normal(size=64) for _ in range(4)]
    start = time.perf_counter()
    out = encrypted_allreduce(updates, keys, scaling_factor=1e6)
    wall = time.perf_counter() - start
    err = float(np.abs(out.aggregate - np.sum(updates, axis=0)).max())
    print(f"  E(x) * E(y) = E(x + y): aggregate exact within {err:.2g}")
    print(f"  wire expansion {out.wire_expansion:.0f}x, "
          f"{out.modular_multiplications} modular multiplications, "
          f"{wall * 1e3:.0f} ms for 4 x 64 elements")
    print("  -> the feasibility Appendix D describes, and the cost that")
    print("     keeps it out of a line-rate dataplane.")


def main() -> None:
    tenancy_demo()
    adaptive_timeout_demo()
    encrypted_demo()


if __name__ == "__main__":
    main()
