#!/usr/bin/env python3
"""Measure like the paper does (SS5.1 methodology).

Runs the paper's measurement procedure on the simulator: aggregate 100
tensors of the same size, pool per-worker TATs, and report the
statistics its violin plots highlight -- then read the rack telemetry to
diagnose where the bottleneck sits (wire vs host CPU), for both the
10 Gbps and the 100 Gbps regimes of SS5.1.

Run:  python examples/measure_like_the_paper.py
"""

from repro.core.job import SwitchMLConfig, SwitchMLJob
from repro.core.tuning import pool_size_for_rate
from repro.harness.distributions import measure_tat_distribution
from repro.harness.telemetry import collect_telemetry
from repro.net.link import LinkSpec
from repro.net.loss import BernoulliLoss


def measure(rate_gbps: float, loss: float = 0.0, repetitions: int = 50):
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=8,
            pool_size=pool_size_for_rate(rate_gbps),
            timeout_s=1e-4,
            link=LinkSpec(rate_gbps=rate_gbps),
            loss_factory=lambda: BernoulliLoss(loss),
            seed=4,
        )
    )
    dist = measure_tat_distribution(job, num_elements=32 * 4096,
                                    repetitions=repetitions)
    telemetry = collect_telemetry(job)
    return dist, telemetry


def main() -> None:
    for rate in (10.0, 100.0):
        dist, telemetry = measure(rate)
        print(f"=== {rate:g} Gbps, lossless, 512 KB tensor x50 ===")
        print(f"  TAT {dist.summary()}")
        print(f"  spread (max-min)/median: {dist.relative_spread:.2%}")
        print(f"  bottleneck: {telemetry.bottleneck} "
              f"(busiest link {telemetry.busiest_link.utilization:.0%}, "
              f"busiest host CPU {telemetry.busiest_host[1]:.0%})")
        print()

    dist, telemetry = measure(10.0, loss=0.01)
    print("=== 10 Gbps with 1% loss ===")
    print(f"  TAT {dist.summary()}")
    print("  violin:")
    print(dist.violin(width=40, bins=8))
    lost = sum(l.frames_lost for l in telemetry.links)
    print(f"  frames lost across the rack: {lost}")
    print("\nthe paper's regimes, reproduced: wire-bound at 10 Gbps,")
    print("host-CPU-bound at 100 Gbps (4 cores), and a loss-fattened violin.")


if __name__ == "__main__":
    main()
