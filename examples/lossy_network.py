#!/usr/bin/env python3
"""Loss recovery in action (paper SS3.5, Figures 5 and 6).

Runs the same aggregation over a clean rack and over racks with 0.1 %
and 1 % per-link random loss, printing the TAT inflation, the recovery
machinery's counters (timeouts, retransmissions, switch-side duplicate
drops and unicast replies), and a packets-per-interval timeline for a
representative worker.  The aggregates stay bit-exact in every case --
that is the whole point of Algorithm 3's seen-bitmap + shadow-copy
design.

Run:  python examples/lossy_network.py
"""

import numpy as np

from repro import SwitchMLConfig, SwitchMLJob
from repro.net.link import LinkSpec
from repro.net.loss import BernoulliLoss


def run(loss: float, tensors, seed: int = 7):
    job = SwitchMLJob(
        SwitchMLConfig(
            num_workers=len(tensors),
            pool_size=128,
            timeout_s=1e-4,  # ~9x the rack RTT (SS6: adapt timeout to RTT)
            link=LinkSpec(rate_gbps=10.0),
            loss_factory=lambda: BernoulliLoss(loss),
            check_invariants=True,  # assert the <=1-phase-lag property live
            seed=seed,
        )
    )
    job.trace.bucket_seconds = 0.0005
    return job.all_reduce(tensors)  # verify=True: raises if any bit is wrong


def main() -> None:
    num_workers = 8
    rng = np.random.default_rng(1)
    tensors = [
        rng.integers(-1000, 1000, 32 * 128 * 40).astype(np.int64)
        for _ in range(num_workers)
    ]

    baseline = None
    for loss in (0.0, 0.001, 0.01):
        out = run(loss, tensors)
        if baseline is None:
            baseline = out.max_tat
        print(f"\n=== loss {loss:.2%} ===")
        print(f"  TAT                {out.max_tat * 1e3:8.3f} ms "
              f"({out.max_tat / baseline:.2f}x the lossless run)")
        print(f"  frames lost        {out.frames_lost:6d}")
        print(f"  retransmissions    {out.retransmissions:6d}")
        print(f"  dup drops @switch  {out.switch_ignored_duplicates:6d}")
        print(f"  unicast replies    {out.switch_unicast_retransmits:6d}")
        print("  aggregate verified bit-exact despite the losses")
        if loss:
            sent = out.trace.series("sent")
            resent = out.trace.series("resent")
            resent_at = dict(resent)
            print("  worker-0 timeline (packets per 0.5 ms):")
            for t, count in sent[:14]:
                extra = resent_at.get(t, 0)
                bar = "#" * max(1, count // 40)
                print(f"    t={t * 1e3:5.1f}ms {count:5d} sent"
                      + (f" +{extra} resent " if extra else "         ")
                      + bar)


if __name__ == "__main__":
    main()
